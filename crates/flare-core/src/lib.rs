//! # flare-core — Flexible In-Network Allreduce
//!
//! The paper's primary contribution, reproduced as a Rust library:
//!
//! * [`dtype`] / [`op`] — flexibility point **F1**: arbitrary element types
//!   (i8/i16/i32/f16/f32 and user-defined) and arbitrary reduction
//!   operators (built-ins plus closures), with per-type HPU cycle costs.
//! * [`wire`] — the Flare packet format (allreduce id, block id, child
//!   index, sparse shard protocol).
//! * [`dense`] — the three aggregation designs of Section 6: single
//!   buffer, multi buffer, and the contention-free, bitwise-reproducible
//!   tree (**F3**).
//! * [`sparse`] — flexibility point **F2**: the first in-network *sparse*
//!   allreduce — direct-mapped hash storage with spill buffers, dense
//!   array storage, shard counters and empty-block packets (Section 7).
//! * [`handlers`] — sPIN packet handlers executing the above on the PsPIN
//!   engine with the paper's cycle costs.
//! * [`switch_prog`] / [`host`] — the same protocol as network-simulator
//!   programs for system-level runs (Figure 15).
//! * [`pool`] — steady-state allocation recycling: pooled aggregation /
//!   scratch buffers and the direct-mapped open-block slab behind the
//!   zero-copy datapath.
//! * [`manager`] — the network manager: reduction-tree computation,
//!   allreduce-id allocation, static memory partitioning and admission
//!   control (Section 4).
//! * [`session`] — **the public API**: [`session::FlareSession`] owns the
//!   manager and tuning; the typed [`session::Collective`] builder runs
//!   dense/sparse allreduce, reduce, broadcast and barrier.
//! * [`report`] — multi-tenant reporting: per-tenant tail statistics
//!   (p50/p99/max), Jain's fairness index and HPU contention summaries,
//!   attached to [`session::RunReport`] by the traffic engine.
//! * [`tag`] — the namespaced wake-tag scheme ([`tag::FlowTag`]) that
//!   lets an outer multiplexer (the traffic engine) own many flows'
//!   timers in one `HostProgram` without collisions.
//! * [`collectives`] — deprecated free-function shims over [`session`]
//!   plus the Horovod-style issue sequencer (Section 8).
//! * [`features`] — the machine-readable Table 1 capability matrix.

pub mod collectives;
pub mod dense;
pub mod dtype;
pub mod features;
pub mod handlers;
pub mod host;
pub mod manager;
pub mod op;
pub mod pool;
pub mod report;
pub mod session;
pub mod sparse;
pub mod switch_prog;
pub mod tag;
pub mod wire;

pub use dtype::{Element, F16};
pub use op::{golden_reduce, Custom, Max, Min, Prod, ReduceOp, Sum};
pub use pool::{BlockSlab, BufferPool, PoolStats, SlabStats};
pub use report::{
    jain_index, FabricStats, HpuSwitchReport, PayloadSpec, TailStats, TenantReport, TenantSection,
};
pub use session::{
    Collective, CollectiveHandle, CollectiveResult, FlareSession, FlareSessionBuilder, RunReport,
    SessionError, SparsePolicy, Tuning,
};
pub use tag::{FlowTag, FlowTagOverflow};
