//! The unified Flare session API: one entry point for every collective.
//!
//! The paper's headline claim is *flexibility* — one switch program serving
//! arbitrary datatypes, operators, dense and sparse data, and multiple
//! concurrent tenants. This module is the programming interface matching
//! that claim: a [`FlareSession`] owns the topology, the network manager
//! (admission control, reduction-tree computation, allreduce-id
//! allocation) and the tuning knobs, and a typed [`Collective`] builder
//! resolves dense vs sparse storage, reproducible-tree selection,
//! windowing and stagger policy internally:
//!
//! ```no_run
//! use flare_core::session::FlareSession;
//! use flare_core::op::Max;
//! use flare_net::{LinkSpec, Topology};
//!
//! let (topo, _switch, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
//! let mut session = FlareSession::builder(topo).build();
//! let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r; 1024]).collect();
//! let out = session.allreduce(inputs).op(Max).run().unwrap();
//! println!("done at {} ns", out.report.completion_ns());
//! ```
//!
//! [`FlareSession::reduce`], [`FlareSession::broadcast`] and
//! [`FlareSession::barrier`] ride the same machinery (the paper:
//! "a barrier can simply be implemented as an in-network allreduce with
//! 0-bytes data"). Multi-tenant admission is explicit via
//! [`FlareSession::admit`] / [`FlareSession::release`], which return
//! [`CollectiveHandle`]s that [`Collective::via`] can run under and that
//! the Horovod-style [`crate::collectives::Sequencer`] accepts directly.
//!
//! The pre-session free functions (`run_dense_allreduce` & friends in
//! [`crate::collectives`]) remain as deprecated shims over this module.

#![deny(missing_docs)]

use flare_des::Time;
use flare_model::AggKind;
use flare_net::{
    NetReport, NetSim, NodeId, SwitchModel, TelemetryConfig, TelemetryReport, Topology,
};

use crate::dtype::Element;
use crate::handlers::SparseStorageKind;
use crate::host::{result_sink, DenseFlareHost, HostConfig, ResultSink, SparseFlareHost};
use crate::manager::{AdmissionError, AllreducePlan, AllreduceRequest, NetworkManager};
use crate::op::{ReduceOp, Sum};
use crate::switch_prog::{FlareDenseProgram, FlareSparseProgram, TreePlacement};

/// Why a collective could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The network manager rejected the admission request.
    Admission(AdmissionError),
    /// The number of per-rank inputs does not match the participant count.
    ShapeMismatch {
        /// Participating hosts.
        hosts: usize,
        /// Per-rank inputs supplied.
        inputs: usize,
    },
    /// Ranks contributed vectors of different lengths.
    RaggedInputs,
    /// A collective was issued with no data (or a zero-element domain).
    EmptyData,
    /// The session (or the `on_hosts` override) has no participating hosts.
    NoHosts,
    /// A root rank at or beyond the participant count.
    RootOutOfRange {
        /// The requested root rank.
        root: usize,
        /// Participating hosts.
        hosts: usize,
    },
    /// A participating host is not attached to the admitted plan's
    /// reduction tree (e.g. [`Collective::via`] combined with
    /// [`Collective::on_hosts`] naming hosts outside the admitted set).
    HostNotInPlan {
        /// The offending host.
        host: NodeId,
    },
    /// A sparse pair index at or beyond the collective's element domain.
    IndexOutOfRange {
        /// The offending global index.
        index: u32,
        /// The collective's domain size.
        total_elems: usize,
    },
    /// Loss injection was configured without a retransmission timeout:
    /// a dropped packet would stall the collective forever.
    LossWithoutRetransmit,
    /// `retransmit_after` was set to `Some(0)`: a zero-delay timer would
    /// re-arm itself at the same instant forever, flooding the event
    /// queue without simulated time ever advancing.
    ZeroRetransmitTimeout,
    /// The session's [`flare_net::SwitchModel::Hpu`] parameters are
    /// inconsistent (e.g. a subset size that does not divide the cluster
    /// width); the contained message is
    /// [`flare_net::HpuParams::validate`]'s diagnosis.
    InvalidSwitchModel(String),
    /// `.reproducible(true)` was combined with a [`Collective::via`]
    /// handle whose plan was not admitted with tree aggregation, so the
    /// bitwise-reproducibility guarantee cannot be honored. Admit the
    /// handle with `reproducible = true` instead.
    ReproducibleViaMismatch,
    /// The [`Collective::via`] handle (or a clone of it) was already
    /// released: its id is torn down and its switch memory returned.
    HandleReleased {
        /// The released allreduce id.
        id: u32,
    },
    /// The parallel-driver thread count resolved to something unusable:
    /// [`Tuning::threads`] was `Some(0)`, or the `FLARE_DES_THREADS`
    /// environment variable was set to `0` or to a non-numeric value.
    /// Zero workers cannot make progress, and silently falling back to
    /// serial would mask a misconfigured benchmark run.
    InvalidThreadCount {
        /// The offending value, as configured (builder value or raw
        /// environment string).
        given: String,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Admission(e) => write!(f, "admission rejected: {e}"),
            SessionError::ShapeMismatch { hosts, inputs } => {
                write!(f, "{inputs} rank inputs for {hosts} participating hosts")
            }
            SessionError::RaggedInputs => write!(f, "rank inputs have different lengths"),
            SessionError::EmptyData => write!(f, "collective issued with no data"),
            SessionError::NoHosts => write!(f, "no participating hosts"),
            SessionError::RootOutOfRange { root, hosts } => {
                write!(f, "root rank {root} out of range for {hosts} hosts")
            }
            SessionError::HostNotInPlan { host } => {
                write!(
                    f,
                    "host {host:?} is not part of the admitted reduction tree"
                )
            }
            SessionError::IndexOutOfRange { index, total_elems } => {
                write!(
                    f,
                    "sparse index {index} outside the {total_elems}-element domain"
                )
            }
            SessionError::LossWithoutRetransmit => {
                write!(
                    f,
                    "link_drop_prob > 0 without retransmit_after: drops would stall the run"
                )
            }
            SessionError::ZeroRetransmitTimeout => {
                write!(
                    f,
                    "retransmit_after = Some(0): a zero-delay timer would loop without advancing time"
                )
            }
            SessionError::InvalidSwitchModel(why) => {
                write!(f, "invalid SwitchModel::Hpu parameters: {why}")
            }
            SessionError::ReproducibleViaMismatch => {
                write!(
                    f,
                    "reproducible(true) with a via() handle not admitted for tree aggregation"
                )
            }
            SessionError::InvalidThreadCount { given } => {
                write!(
                    f,
                    "invalid simulation thread count {given:?}: expected an \
                     integer >= 1 (builder `threads(n)` or FLARE_DES_THREADS)"
                )
            }
            SessionError::HandleReleased { id } => {
                write!(f, "collective handle #{id} was already released")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<AdmissionError> for SessionError {
    fn from(e: AdmissionError) -> Self {
        SessionError::Admission(e)
    }
}

/// Sparse storage policy along the tree: the paper stores data "in hash
/// tables in the leaves switches, and in an array in the root switch"
/// because sparse data densifies toward the root.
#[derive(Debug, Clone, Copy)]
pub struct SparsePolicy {
    /// Hash slots per block at non-root switches.
    pub hash_slots: usize,
    /// Spill-buffer capacity at non-root switches.
    pub spill_cap: usize,
    /// Block span in elements (≈ pairs-per-packet / density).
    pub span: usize,
    /// Use array storage at the root (otherwise hash everywhere).
    pub array_at_root: bool,
}

impl Default for SparsePolicy {
    fn default() -> Self {
        // 10 packets of pairs per block at the paper's 128-pair packet, a
        // spill buffer of one packet, array storage at the densified root.
        Self {
            hash_slots: 1024,
            spill_cap: 128,
            span: 1280,
            array_at_root: true,
        }
    }
}

/// Session-wide tuning: packetization, calibrated switch rate, fault
/// handling and determinism knobs shared by every collective the session
/// runs (individual collectives can override the seed and window).
#[derive(Debug, Clone)]
pub struct Tuning {
    /// Packet payload in elements (dense) — the paper's 256×f32 = 1 KiB.
    pub elems_per_packet: usize,
    /// Pairs per packet (sparse) — the paper's 128 pairs = 1 KiB.
    pub pairs_per_packet: usize,
    /// How switch processing time is modeled:
    /// [`SwitchModel::RateLimited`] (the PsPIN-calibrated serial pipeline,
    /// the default), [`SwitchModel::Ideal`] (no processing delay) or
    /// [`SwitchModel::Hpu`] (event-driven multi-core handler scheduling
    /// per [`flare_net::compute`]).
    pub switch_model: SwitchModel,
    /// Host retransmission timeout, dense and sparse (None = reliable
    /// network).
    pub retransmit_after: Option<Time>,
    /// RNG seed (loss injection etc.).
    pub seed: u64,
    /// Packet size in bytes quoted to admission control.
    pub packet_bytes: usize,
    /// Drop probability injected on every link (0.0 = lossless). Pair
    /// with [`Tuning::retransmit_after`]: switch-side duplicate rejection
    /// (child bitmaps dense, shard-sequence tracking sparse) absorbs the
    /// retransmissions (paper Section 4.1).
    pub link_drop_prob: f64,
    /// Worker threads for the partitioned parallel simulation driver
    /// (`NetSim::run_threads`). `None` (the default) runs the serial
    /// batched driver; `Some(n)` with `n >= 1` runs the conservative
    /// lookahead driver with up to `n` workers (topologies that partition
    /// into a single shard fall back to serial). `Some(0)` is rejected at
    /// [`Collective::run`] with [`SessionError::InvalidThreadCount`].
    ///
    /// When unset, the `FLARE_DES_THREADS` environment variable is
    /// consulted at `run()` with the same semantics; an explicit builder
    /// value wins over the environment. Serial and parallel runs produce
    /// bitwise-identical results — see the README's "Parallel simulation"
    /// section for the determinism contract.
    pub threads: Option<u32>,
    /// Fabric telemetry capture (`None` = off, the default). When set,
    /// every run records windowed per-link utilization, HPU occupancy
    /// timelines and flow-lifecycle trace events, returned as
    /// [`RunReport::trace`]. Capture never perturbs the schedule:
    /// makespans and results are bit-identical with telemetry on or off,
    /// at any thread count.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for Tuning {
    fn default() -> Self {
        Self {
            elems_per_packet: 256,
            pairs_per_packet: 128,
            // 512 cores / 1024 cycles per 1 KiB packet = 0.5 pkt/ns ≈
            // 512 B/ns — the full-switch dense aggregation rate measured
            // on the PsPIN engine.
            switch_model: SwitchModel::calibrated(),
            retransmit_after: None,
            seed: 7,
            packet_bytes: 1024,
            link_drop_prob: 0.0,
            threads: None,
            telemetry: None,
        }
    }
}

/// Builder for a [`FlareSession`]; see [`FlareSession::builder`].
#[derive(Debug)]
pub struct FlareSessionBuilder {
    topology: Topology,
    switch_memory: u64,
    tuning: Tuning,
    hosts: Option<Vec<NodeId>>,
}

impl FlareSessionBuilder {
    /// Per-switch working-memory budget for admission control (the paper's
    /// PsPIN switch has 64 clusters × 1 MiB of L1; default 64 MiB).
    pub fn switch_memory(mut self, bytes: u64) -> Self {
        self.switch_memory = bytes;
        self
    }

    /// Restrict the default participant set (defaults to every host in the
    /// topology).
    pub fn hosts(mut self, hosts: impl Into<Vec<NodeId>>) -> Self {
        self.hosts = Some(hosts.into());
        self
    }

    /// Dense packet payload in elements.
    pub fn elems_per_packet(mut self, n: usize) -> Self {
        self.tuning.elems_per_packet = n;
        self
    }

    /// Sparse packet payload in `(index, value)` pairs.
    pub fn pairs_per_packet(mut self, n: usize) -> Self {
        self.tuning.pairs_per_packet = n;
        self
    }

    /// Switch processing rate in bytes/ns — shorthand for
    /// [`switch_model`](Self::switch_model) with
    /// [`SwitchModel::RateLimited`].
    pub fn switch_proc_rate(mut self, bytes_per_ns: f64) -> Self {
        self.tuning.switch_model = SwitchModel::RateLimited(bytes_per_ns);
        self
    }

    /// Typed switch compute model: `Ideal`, `RateLimited(rate)` or
    /// `Hpu(params)` — the latter schedules every handler onto a concrete
    /// HPU core (hierarchical FCFS, per-subset queueing) with service
    /// times derived from [`flare_model::SwitchParams`].
    pub fn switch_model(mut self, model: SwitchModel) -> Self {
        self.tuning.switch_model = model;
        self
    }

    /// Host retransmission timeout for dense and sparse collectives
    /// (None = reliable network). `Some(0)` is rejected at
    /// [`Collective::run`] with [`SessionError::ZeroRetransmitTimeout`]:
    /// a zero-delay timer would re-arm at the same instant forever.
    pub fn retransmit_after(mut self, timeout: Option<Time>) -> Self {
        self.tuning.retransmit_after = timeout;
        self
    }

    /// Default RNG seed for simulation runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.tuning.seed = seed;
        self
    }

    /// Packet size in bytes quoted to admission control.
    pub fn packet_bytes(mut self, bytes: usize) -> Self {
        self.tuning.packet_bytes = bytes;
        self
    }

    /// Inject packet loss on every link with probability `p` (pair with
    /// [`retransmit_after`](Self::retransmit_after) to recover). Both
    /// dense and sparse collectives recover: hosts retransmit overdue
    /// blocks, switches reject the duplicates (child bitmaps dense,
    /// shard-sequence tracking sparse) and replay completed results from
    /// their caches (paper Section 4.1). Drops are decided by a
    /// per-link-direction RNG stream derived from the run seed, so a
    /// lossy run is bitwise-reproducible — at any thread count.
    pub fn link_drop_prob(mut self, p: f64) -> Self {
        self.tuning.link_drop_prob = p;
        self
    }

    /// Run simulations on `n` worker threads via the partitioned
    /// conservative-lookahead driver (see [`Tuning::threads`]). `n = 0`
    /// is rejected at [`Collective::run`] with
    /// [`SessionError::InvalidThreadCount`]; an explicit value here wins
    /// over the `FLARE_DES_THREADS` environment variable.
    pub fn threads(mut self, n: u32) -> Self {
        self.tuning.threads = Some(n);
        self
    }

    /// Capture fabric telemetry on every run (see [`Tuning::telemetry`]):
    /// per-link utilization timelines, HPU occupancy and flow-lifecycle
    /// trace events, exported via [`RunReport::trace`] as a Perfetto-
    /// loadable Chrome trace or a CSV utilization dump.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.tuning.telemetry = Some(cfg);
        self
    }

    /// Build the session.
    pub fn build(self) -> FlareSession {
        let hosts = self.hosts.unwrap_or_else(|| self.topology.hosts());
        FlareSession {
            manager: NetworkManager::new(self.switch_memory),
            topology: self.topology,
            tuning: self.tuning,
            hosts,
        }
    }
}

/// An admitted collective: the network manager has computed its reduction
/// tree, assigned a unique id and reserved switch working memory. Obtain
/// via [`FlareSession::admit`], run collectives under it with
/// [`Collective::via`], release with [`FlareSession::release`].
#[derive(Debug, Clone)]
pub struct CollectiveHandle {
    plan: AllreducePlan,
    label: String,
}

impl CollectiveHandle {
    /// The unique allreduce id.
    pub fn id(&self) -> u32 {
        self.plan.id
    }

    /// The handle's label (used by the sequencer); defaults to
    /// `allreduce-<id>`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Rename the handle (e.g. to a gradient-tensor name for sequencing).
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// The admitted plan: reduction tree, algorithm, reservations, window.
    pub fn plan(&self) -> &AllreducePlan {
        &self.plan
    }

    /// The reduction tree's root switch.
    pub fn root_switch(&self) -> NodeId {
        self.plan.tree.root
    }

    /// The selected aggregation algorithm.
    pub fn algorithm(&self) -> AggKind {
        self.plan.algorithm
    }

    /// Largest single-switch working-memory reservation, in bytes.
    pub fn reserved_bytes(&self) -> u64 {
        self.plan.max_reserved_bytes()
    }

    /// Recommended in-flight blocks per host (the paper's ℛ).
    pub fn window(&self) -> usize {
        self.plan.window
    }
}

/// A live Flare deployment: topology + network manager + tuning. The entry
/// point for every collective; see the [module docs](self).
pub struct FlareSession {
    topology: Topology,
    manager: NetworkManager,
    tuning: Tuning,
    hosts: Vec<NodeId>,
}

impl FlareSession {
    /// Start building a session over `topology`.
    pub fn builder(topology: Topology) -> FlareSessionBuilder {
        FlareSessionBuilder {
            topology,
            switch_memory: 64 << 20,
            tuning: Tuning::default(),
            hosts: None,
        }
    }

    /// A session over `topology` with default tuning (all hosts
    /// participate, 64 MiB switch memory).
    pub fn new(topology: Topology) -> Self {
        Self::builder(topology).build()
    }

    /// The topology this session runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The default participant set.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The session-wide tuning knobs.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// Number of currently admitted (unreleased) collectives.
    pub fn active_collectives(&self) -> usize {
        self.manager.active_count()
    }

    /// Working memory currently reserved on `switch`, in bytes.
    pub fn reserved_on(&self, switch: NodeId) -> u64 {
        self.manager.used_on(switch)
    }

    /// Explicitly admit a collective of `data_bytes` per host: computes the
    /// reduction tree (rerouting around saturated switches), selects the
    /// aggregation algorithm, reserves switch memory. The handle stays
    /// admitted — and its memory reserved — until [`release`](Self::release).
    pub fn admit(
        &mut self,
        data_bytes: u64,
        reproducible: bool,
    ) -> Result<CollectiveHandle, SessionError> {
        self.admit_on(None, data_bytes, reproducible)
    }

    /// [`admit`](Self::admit) over an explicit host set.
    pub fn admit_on(
        &mut self,
        hosts: Option<&[NodeId]>,
        data_bytes: u64,
        reproducible: bool,
    ) -> Result<CollectiveHandle, SessionError> {
        let hosts = hosts.unwrap_or(&self.hosts);
        if hosts.is_empty() {
            return Err(SessionError::NoHosts);
        }
        let req = AllreduceRequest {
            data_bytes: data_bytes.max(1),
            packet_bytes: self.tuning.packet_bytes,
            reproducible,
        };
        let plan = self.manager.create_allreduce(&self.topology, hosts, &req)?;
        let label = format!("allreduce-{}", plan.id);
        Ok(CollectiveHandle { plan, label })
    }

    /// Release an admitted collective, returning its switch memory to the
    /// pool.
    ///
    /// Releasing a handle whose id was already torn down (a clone of a
    /// released handle, or a manual double release) is a typed error —
    /// [`SessionError::HandleReleased`] — not a silent `false`.
    pub fn release(&mut self, handle: CollectiveHandle) -> Result<(), SessionError> {
        let id = handle.plan.id;
        if self.manager.teardown(id) {
            Ok(())
        } else {
            Err(SessionError::HandleReleased { id })
        }
    }

    /// Lend the session's topology to a caller-built simulation and take
    /// it back afterwards — the same no-deep-copy pattern
    /// [`Collective::run`] uses internally, exposed so external drivers
    /// (e.g. the `flare-workloads` traffic engine) can run their own
    /// multi-tenant [`NetSim`] over the session's fabric.
    ///
    /// The closure receives the topology by value and must hand it back
    /// (typically via [`NetSim::into_topology`]) along with its result.
    pub fn lend_topology<R>(&mut self, f: impl FnOnce(Topology) -> (Topology, R)) -> R {
        let topo = std::mem::take(&mut self.topology);
        let (topo, r) = f(topo);
        self.topology = topo;
        r
    }

    /// An allreduce of `inputs` (one vector per participating host, in
    /// host order): every rank receives the full reduction. Defaults to
    /// [`Sum`]; chain [`Collective`] methods to customize, then
    /// [`run`](Collective::run).
    pub fn allreduce<T: Element>(&mut self, inputs: Vec<Vec<T>>) -> Collective<'_, T, Sum> {
        self.collective(Payload::Dense(inputs))
    }

    /// A *sparse* allreduce over a `total_elems`-element domain:
    /// `pairs[r]` is rank `r`'s sparsified `(global index, value)` list.
    /// Storage follows the [`SparsePolicy`] (see [`Collective::policy`]).
    pub fn sparse_allreduce<T: Element>(
        &mut self,
        total_elems: usize,
        pairs: Vec<Vec<(u32, T)>>,
    ) -> Collective<'_, T, Sum> {
        self.collective(Payload::Sparse { total_elems, pairs })
    }

    /// An in-network **reduce**: every rank contributes, only
    /// `root`'s result is meaningful ([`CollectiveResult::root`]).
    pub fn reduce<T: Element>(
        &mut self,
        root: usize,
        inputs: Vec<Vec<T>>,
    ) -> Collective<'_, T, Sum> {
        let mut c = self.collective(Payload::Dense(inputs));
        c.root = Some(root);
        c
    }

    /// An in-network **broadcast** of `root`'s `data`: non-root ranks
    /// contribute the operator identity, so the allreduce result *is* the
    /// root's vector.
    pub fn broadcast<T: Element>(&mut self, root: usize, data: Vec<T>) -> Collective<'_, T, Sum> {
        let mut c = self.collective(Payload::Broadcast { data });
        c.root = Some(root);
        c
    }

    /// An in-network **barrier**: a one-element allreduce (the paper: "a
    /// barrier can simply be implemented as an in-network allreduce with
    /// 0-bytes data"). Completion time is
    /// [`RunReport::completion_ns`].
    pub fn barrier(&mut self) -> Collective<'_, i32, Sum> {
        self.collective(Payload::Barrier)
    }

    fn collective<T: Element>(&mut self, payload: Payload<T>) -> Collective<'_, T, Sum> {
        Collective {
            session: self,
            op: Sum,
            payload,
            root: None,
            reproducible: false,
            policy: SparsePolicy::default(),
            hosts: None,
            label: None,
            window: None,
            seed: None,
            plan: None,
        }
    }
}

impl std::fmt::Debug for FlareSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlareSession")
            .field("hosts", &self.hosts.len())
            .field("active_collectives", &self.manager.active_count())
            .field("tuning", &self.tuning)
            .finish_non_exhaustive()
    }
}

/// What a collective carries.
enum Payload<T: Element> {
    /// One dense vector per rank.
    Dense(Vec<Vec<T>>),
    /// Sparsified `(index, value)` lists over a dense domain.
    Sparse {
        total_elems: usize,
        pairs: Vec<Vec<(u32, T)>>,
    },
    /// The root's vector (identity everywhere else).
    Broadcast { data: Vec<T> },
    /// No data; completion time is the product.
    Barrier,
}

/// A collective under construction. Produced by [`FlareSession::allreduce`]
/// and friends; consumed by [`run`](Collective::run).
///
/// The builder resolves everything the old free-function API made callers
/// wire by hand: admission (unless [`via`](Collective::via) supplies an
/// admitted handle), dense vs sparse switch storage, reproducible-tree
/// algorithm selection, windowing and per-rank stagger offsets.
pub struct Collective<'s, T: Element, O: ReduceOp<T>> {
    session: &'s mut FlareSession,
    op: O,
    payload: Payload<T>,
    root: Option<usize>,
    reproducible: bool,
    policy: SparsePolicy,
    hosts: Option<Vec<NodeId>>,
    label: Option<String>,
    window: Option<usize>,
    seed: Option<u64>,
    plan: Option<AllreducePlan>,
}

impl<'s, T: Element, O: ReduceOp<T>> Collective<'s, T, O> {
    /// Use reduction operator `op` (default [`Sum`]): any built-in
    /// ([`crate::op::Min`], [`crate::op::Max`], [`crate::op::Prod`]) or a
    /// [`crate::op::Custom`] closure — flexibility point F1.
    pub fn op<O2: ReduceOp<T>>(self, op: O2) -> Collective<'s, T, O2> {
        Collective {
            session: self.session,
            op,
            payload: self.payload,
            root: self.root,
            reproducible: self.reproducible,
            policy: self.policy,
            hosts: self.hosts,
            label: self.label,
            window: self.window,
            seed: self.seed,
            plan: self.plan,
        }
    }

    /// Require bitwise reproducibility — forces the contention-free tree
    /// aggregation whose operand placement is arrival-order independent
    /// (flexibility point F3).
    pub fn reproducible(mut self, yes: bool) -> Self {
        self.reproducible = yes;
        self
    }

    /// Sparse storage policy (hash slots, spill capacity, block span, root
    /// array storage). Only meaningful for
    /// [`FlareSession::sparse_allreduce`] collectives.
    pub fn policy(mut self, policy: SparsePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Run over an explicit host subset instead of the session default.
    pub fn on_hosts(mut self, hosts: impl Into<Vec<NodeId>>) -> Self {
        self.hosts = Some(hosts.into());
        self
    }

    /// Name the collective (shows up in handle labels and sequencing).
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Shrink the in-flight block window (default: the admitted plan's
    /// Little's-law recommendation ℛ). Clamped to the admitted window —
    /// the switch-memory reservation is sized for it, so growing would
    /// overrun the admission-control guarantee.
    pub fn window(mut self, blocks: usize) -> Self {
        self.window = Some(blocks);
        self
    }

    /// Override the simulation RNG seed for this run only.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Run under a pre-admitted [`CollectiveHandle`] (multi-tenant usage)
    /// instead of admitting — and releasing — a plan internally.
    pub fn via(mut self, handle: &CollectiveHandle) -> Self {
        self.plan = Some(handle.plan.clone());
        self
    }
}

impl<T: Element, O: ReduceOp<T> + Clone + 'static> Collective<'_, T, O> {
    /// Validate, admit (unless [`via`](Collective::via) was given), run the
    /// packet-level simulation, and release the internal admission.
    pub fn run(self) -> Result<CollectiveResult<T>, SessionError> {
        let hosts: Vec<NodeId> = match &self.hosts {
            Some(h) => h.clone(),
            None => self.session.hosts.clone(),
        };
        if hosts.is_empty() {
            return Err(SessionError::NoHosts);
        }
        if let Some(root) = self.root {
            if root >= hosts.len() {
                return Err(SessionError::RootOutOfRange {
                    root,
                    hosts: hosts.len(),
                });
            }
        }

        // Resolve per-rank dense inputs or sparse pair lists.
        let op = self.op;
        let mut tuning = self.session.tuning.clone();
        tuning.threads = resolve_threads(tuning.threads)?;
        if tuning.retransmit_after == Some(0) {
            // A zero-delay timer re-arms at the same instant forever,
            // flooding the event queue without time ever advancing.
            return Err(SessionError::ZeroRetransmitTimeout);
        }
        if tuning.link_drop_prob > 0.0 && tuning.retransmit_after.is_none() {
            // A drop with no retransmission stalls the run forever; fail
            // fast with a typed error instead of panicking mid-sim.
            return Err(SessionError::LossWithoutRetransmit);
        }
        if let SwitchModel::Hpu(params) = &tuning.switch_model {
            // Catch inconsistent compute parameters here, not as a
            // `SwitchCompute::new` panic deep inside switch installation.
            params
                .validate()
                .map_err(SessionError::InvalidSwitchModel)?;
        }
        enum Resolved<T: Element> {
            Dense(Vec<Vec<T>>),
            Sparse {
                total_elems: usize,
                pairs: Vec<Vec<(u32, T)>>,
            },
        }
        let resolved = match self.payload {
            Payload::Dense(inputs) => {
                if inputs.len() != hosts.len() {
                    return Err(SessionError::ShapeMismatch {
                        hosts: hosts.len(),
                        inputs: inputs.len(),
                    });
                }
                let n = inputs[0].len();
                if n == 0 {
                    return Err(SessionError::EmptyData);
                }
                if inputs.iter().any(|v| v.len() != n) {
                    return Err(SessionError::RaggedInputs);
                }
                Resolved::Dense(inputs)
            }
            Payload::Sparse { total_elems, pairs } => {
                if pairs.len() != hosts.len() {
                    return Err(SessionError::ShapeMismatch {
                        hosts: hosts.len(),
                        inputs: pairs.len(),
                    });
                }
                if total_elems == 0 {
                    return Err(SessionError::EmptyData);
                }
                if let Some(&(index, _)) = pairs
                    .iter()
                    .flat_map(|p| p.iter())
                    .find(|&&(i, _)| i as usize >= total_elems)
                {
                    return Err(SessionError::IndexOutOfRange { index, total_elems });
                }
                Resolved::Sparse { total_elems, pairs }
            }
            Payload::Broadcast { data } => {
                if data.is_empty() {
                    return Err(SessionError::EmptyData);
                }
                let root = self.root.expect("broadcast sets root");
                let identity = vec![op.identity(); data.len()];
                let inputs = (0..hosts.len())
                    .map(|r| {
                        if r == root {
                            data.clone()
                        } else {
                            identity.clone()
                        }
                    })
                    .collect();
                Resolved::Dense(inputs)
            }
            Payload::Barrier => Resolved::Dense(vec![vec![T::zero()]; hosts.len()]),
        };

        // Admission: explicit handle or an internal admit-run-release.
        let data_bytes = match &resolved {
            Resolved::Dense(inputs) => (inputs[0].len() * T::WIRE_BYTES) as u64,
            Resolved::Sparse { pairs, .. } => {
                let nnz: usize = pairs.iter().map(Vec::len).sum();
                (nnz / hosts.len().max(1) * (4 + T::WIRE_BYTES)) as u64
            }
        };
        let (mut plan, owned) = match self.plan {
            Some(plan) => {
                // A via() handle (or a clone) may have been released, and
                // its plan was admitted with its own reproducibility flag.
                if !self.session.manager.is_active(plan.id) {
                    return Err(SessionError::HandleReleased { id: plan.id });
                }
                if self.reproducible && plan.algorithm != AggKind::Tree {
                    return Err(SessionError::ReproducibleViaMismatch);
                }
                (plan, false)
            }
            None => {
                let handle = self
                    .session
                    .admit_on(Some(&hosts), data_bytes, self.reproducible)?;
                (handle.plan, true)
            }
        };
        // Every participant must be attached to the plan's tree — a
        // pre-admitted handle (`via`) may cover a different host set.
        if let Some(&host) = hosts
            .iter()
            .find(|h| !plan.tree.host_attach.contains_key(h))
        {
            if owned {
                self.session.manager.teardown(plan.id);
            }
            return Err(SessionError::HostNotInPlan { host });
        }
        if let Some(w) = self.window {
            // Only shrink: the admitted switch-memory reservation is sized
            // for the plan's window, so growing it would overrun the
            // admission-control guarantee.
            plan.window = w.clamp(1, plan.window);
        }

        let seed = self.seed.unwrap_or(tuning.seed);
        // Lend the session's topology to the simulator and take it back
        // afterwards — no per-collective deep copy.
        let topo = std::mem::take(&mut self.session.topology);
        let (ranks, net, trace, topo) = match resolved {
            Resolved::Dense(inputs) => {
                execute_dense(topo, &hosts, &plan, op, inputs, &tuning, seed)
            }
            Resolved::Sparse { total_elems, pairs } => execute_sparse(
                topo,
                &hosts,
                &plan,
                op,
                total_elems,
                pairs,
                self.policy,
                &tuning,
                seed,
            ),
        };
        self.session.topology = topo;

        // Name the collective's trace track after its label (or the
        // default `allreduce-<id>`) so Perfetto shows a readable lane.
        let trace = trace.map(|mut t| {
            let label = self
                .label
                .clone()
                .unwrap_or_else(|| format!("allreduce-{}", plan.id));
            t.tracks = vec![(plan.id as u64, label)];
            Box::new(t)
        });
        let report = RunReport {
            collective: plan.id,
            label: self.label,
            algorithm: plan.algorithm,
            window: plan.window,
            reserved_bytes: plan.max_reserved_bytes(),
            tree_depth: plan.tree.max_depth(),
            net,
            tenants: None,
            trace,
        };
        if owned {
            self.session.manager.teardown(plan.id);
        }
        Ok(CollectiveResult {
            ranks,
            root_rank: self.root,
            report,
        })
    }
}

/// Unified outcome report of one collective run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The allreduce id the run executed under.
    pub collective: u32,
    /// The collective's label, if [`Collective::named`] was used.
    pub label: Option<String>,
    /// Aggregation algorithm selected by the Section 6.4 policy.
    pub algorithm: AggKind,
    /// In-flight blocks per host (the paper's ℛ).
    pub window: usize,
    /// Largest single-switch working-memory reservation, in bytes.
    pub reserved_bytes: u64,
    /// Depth of the reduction tree (0 = single switch).
    pub tree_depth: usize,
    /// The network simulator's measurements.
    pub net: NetReport,
    /// Per-tenant tail metrics and fabric contention stats; `Some` only
    /// for multi-tenant traffic-engine runs (see
    /// [`crate::report::TenantSection`]), `None` for single collectives.
    pub tenants: Option<crate::report::TenantSection>,
    /// Captured fabric telemetry; `Some` only when the session enabled it
    /// (builder [`FlareSessionBuilder::telemetry`] / [`Tuning::telemetry`]).
    /// Export with [`TelemetryReport::chrome_trace`] (Perfetto-loadable)
    /// or [`TelemetryReport::utilization_csv`]. Boxed: the capture can
    /// dwarf the rest of the report.
    pub trace: Option<Box<TelemetryReport>>,
}

impl RunReport {
    /// Completion time of the slowest rank, in ns (falls back to the
    /// simulation makespan if no rank marked itself done).
    pub fn completion_ns(&self) -> Time {
        self.net.last_done.unwrap_or(self.net.makespan)
    }

    /// Total bytes that traversed network links (each hop counted).
    pub fn total_link_bytes(&self) -> u64 {
        self.net.total_link_bytes
    }

    /// Packets dropped by loss injection.
    pub fn drops(&self) -> u64 {
        self.net.drops
    }
}

/// The typed result of a collective: per-rank output vectors plus the
/// unified [`RunReport`].
#[derive(Debug, Clone)]
pub struct CollectiveResult<T> {
    ranks: Vec<Vec<T>>,
    root_rank: Option<usize>,
    /// Timing, traffic and plan metadata for the run.
    pub report: RunReport,
}

impl<T> CollectiveResult<T> {
    /// All per-rank results, in participant order.
    pub fn ranks(&self) -> &[Vec<T>] {
        &self.ranks
    }

    /// Rank `r`'s result vector.
    pub fn rank(&self, r: usize) -> &[T] {
        &self.ranks[r]
    }

    /// The root's result (reduce/broadcast); falls back to rank 0 for
    /// rootless collectives, where every rank holds the same vector.
    pub fn root(&self) -> &[T] {
        &self.ranks[self.root_rank.unwrap_or(0)]
    }

    /// Consume into the per-rank vectors.
    pub fn into_ranks(self) -> Vec<Vec<T>> {
        self.ranks
    }

    /// Number of participating ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }
}

/// Per-rank stagger step (in blocks) that is safe under windowing.
///
/// A block stays open until the largest-offset host reaches it, so the
/// total offset spread must fit inside the window with slack left for
/// pipelining; when the window already covers every block, staggering is
/// unconstrained and hosts spread maximally (the paper's Section 5 bound
/// delta <= delta_c <= delta*Z/N).
pub fn stagger_step(window: usize, blocks: u64, hosts: usize) -> u64 {
    if window as u64 >= blocks {
        (blocks / hosts as u64).max(1)
    } else {
        (window.saturating_sub(32) / hosts) as u64
    }
}

/// The [`TreePlacement`] of `switch` inside `plan`'s reduction tree —
/// the record a switch program needs to know its parent, children and
/// child index. Exposed for external drivers (the traffic engine) that
/// install their own switch programs over an admitted plan.
///
/// # Panics
/// Panics if `switch` is not part of the plan's tree.
pub fn placement_for(plan: &AllreducePlan, switch: NodeId) -> TreePlacement {
    let rec = plan.tree.switch(switch).expect("switch in tree");
    TreePlacement {
        allreduce: plan.id,
        parent: rec.parent,
        children: rec.children.clone(),
        my_child_index: rec.my_child_index,
    }
}

/// Wire a dense run: per-switch Flare programs, per-host participants with
/// staggered windows, one simulation. Returns the per-rank results, the
/// network report and the topology (handed back for reuse). Shared by
/// [`Collective::run`] and the deprecated `run_dense_allreduce` shim.
/// Resolve the effective worker-thread count for a run: an explicit
/// [`Tuning::threads`] wins; otherwise the `FLARE_DES_THREADS` environment
/// variable is consulted. Zero (from either source) and non-numeric
/// environment values are configuration errors, not silent serial
/// fallbacks — a benchmark run that *thinks* it is parallel must not
/// quietly measure the serial driver. Public so engine-style drivers
/// (`flare_workloads::traffic`) honor the same knobs as `Collective::run`.
pub fn resolve_threads(configured: Option<u32>) -> Result<Option<u32>, SessionError> {
    if let Some(n) = configured {
        if n == 0 {
            return Err(SessionError::InvalidThreadCount {
                given: "0".to_string(),
            });
        }
        return Ok(Some(n));
    }
    match std::env::var("FLARE_DES_THREADS") {
        Ok(raw) => match raw.trim().parse::<u32>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(SessionError::InvalidThreadCount { given: raw }),
        },
        Err(_) => Ok(None),
    }
}

/// Run the simulation with the driver selected by [`Tuning::threads`]:
/// the serial batched driver when `None`, the partitioned
/// conservative-lookahead driver otherwise. Both produce bitwise-identical
/// reports (differentially tested in `flare-net`); the parallel driver
/// itself falls back to serial on topologies that form a single partition.
fn run_sim(sim: &mut NetSim, tuning: &Tuning) -> NetReport {
    match tuning.threads {
        Some(n) => sim.run_threads(None, n as usize),
        None => sim.run(None),
    }
}

pub(crate) fn execute_dense<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[NodeId],
    plan: &AllreducePlan,
    op: O,
    inputs: Vec<Vec<T>>,
    tuning: &Tuning,
    seed: u64,
) -> (Vec<Vec<T>>, NetReport, Option<TelemetryReport>, Topology) {
    assert_eq!(hosts.len(), inputs.len(), "one input per host");
    let mut sim = NetSim::new(topo, seed);
    if let Some(cfg) = tuning.telemetry {
        sim.enable_telemetry(cfg);
    }
    sim.set_uniform_drop_prob(tuning.link_drop_prob);
    for s in &plan.tree.switches {
        let prog = FlareDenseProgram::new(placement_for(plan, s.switch), op.clone())
            .with_loss_recovery(tuning.link_drop_prob > 0.0);
        sim.install_switch_model(s.switch, Box::new(prog), tuning.switch_model.clone());
    }
    let blocks = inputs[0].len().div_ceil(tuning.elems_per_packet) as u64;
    let step = stagger_step(plan.window, blocks, hosts.len());
    let mut sinks: Vec<ResultSink<T>> = Vec::with_capacity(hosts.len());
    for (rank, (&h, data)) in hosts.iter().zip(inputs).enumerate() {
        let (leaf, child_index) = plan.tree.host_attach[&h];
        let sink = result_sink();
        sinks.push(sink.clone());
        let cfg = HostConfig {
            allreduce: plan.id,
            leaf,
            child_index,
            window: plan.window,
            stagger_offset: rank as u64 * step,
            retransmit_after: tuning.retransmit_after,
            block_base: 0,
            wake_seq: 0,
        };
        let host = DenseFlareHost::new(cfg, tuning.elems_per_packet, data, sink);
        sim.install_host(h, Box::new(host));
    }
    let report = run_sim(&mut sim, tuning);
    let trace = sim.take_telemetry();
    let results = sinks
        .into_iter()
        .map(|s| s.lock().expect("sink lock").take().expect("host completed"))
        .collect();
    (results, report, trace, sim.into_topology())
}

/// Wire a sparse run: hash/array stores per the policy, shard-tracking
/// hosts, one simulation. Returns the per-rank results, the network report
/// and the topology (handed back for reuse). Shared by
/// [`Collective::run`] and the deprecated `run_sparse_allreduce` shim.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_sparse<T: Element, O: ReduceOp<T> + Clone + 'static>(
    topo: Topology,
    hosts: &[NodeId],
    plan: &AllreducePlan,
    op: O,
    total_elems: usize,
    inputs: Vec<Vec<(u32, T)>>,
    policy: SparsePolicy,
    tuning: &Tuning,
    seed: u64,
) -> (Vec<Vec<T>>, NetReport, Option<TelemetryReport>, Topology) {
    assert_eq!(hosts.len(), inputs.len());
    let mut sim = NetSim::new(topo, seed);
    if let Some(cfg) = tuning.telemetry {
        sim.enable_telemetry(cfg);
    }
    sim.set_uniform_drop_prob(tuning.link_drop_prob);
    for s in &plan.tree.switches {
        let storage = if s.parent.is_none() && policy.array_at_root {
            SparseStorageKind::Array { span: policy.span }
        } else {
            SparseStorageKind::Hash {
                slots: policy.hash_slots,
                spill_cap: policy.spill_cap,
            }
        };
        let prog = FlareSparseProgram::new(
            placement_for(plan, s.switch),
            op.clone(),
            storage,
            tuning.pairs_per_packet,
        )
        .with_loss_recovery(tuning.link_drop_prob > 0.0);
        sim.install_switch_model(s.switch, Box::new(prog), tuning.switch_model.clone());
    }
    let blocks = total_elems.div_ceil(policy.span) as u64;
    let step = stagger_step(plan.window, blocks, hosts.len());
    let mut sinks: Vec<ResultSink<T>> = Vec::with_capacity(hosts.len());
    for (rank, (&h, pairs)) in hosts.iter().zip(inputs).enumerate() {
        let (leaf, child_index) = plan.tree.host_attach[&h];
        let sink = result_sink();
        sinks.push(sink.clone());
        let cfg = HostConfig {
            allreduce: plan.id,
            leaf,
            child_index,
            window: plan.window,
            stagger_offset: rank as u64 * step,
            retransmit_after: tuning.retransmit_after,
            block_base: 0,
            wake_seq: 0,
        };
        let host = SparseFlareHost::new(
            cfg,
            op.clone(),
            total_elems,
            policy.span,
            tuning.pairs_per_packet,
            pairs,
            sink,
        );
        sim.install_host(h, Box::new(host));
    }
    let report = run_sim(&mut sim, tuning);
    let trace = sim.take_telemetry();
    let results = sinks
        .into_iter()
        .map(|s| s.lock().expect("sink lock").take().expect("host completed"))
        .collect();
    (results, report, trace, sim.into_topology())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{golden_reduce, Max};
    use flare_net::LinkSpec;

    fn star_session(hosts: usize) -> FlareSession {
        let (topo, _sw, _hosts) = Topology::star(hosts, LinkSpec::hundred_gig());
        FlareSession::builder(topo).build()
    }

    #[test]
    fn builder_defaults_cover_all_hosts() {
        let session = star_session(5);
        assert_eq!(session.hosts().len(), 5);
        assert_eq!(session.active_collectives(), 0);
        assert_eq!(session.tuning().elems_per_packet, 256);
    }

    #[test]
    fn allreduce_defaults_to_sum_and_matches_golden() {
        let mut session = star_session(4);
        let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r + 1; 100]).collect();
        let want = golden_reduce(&Sum, &inputs);
        let out = session.allreduce(inputs).run().unwrap();
        assert_eq!(out.num_ranks(), 4);
        for r in out.ranks() {
            assert_eq!(*r, want);
        }
        assert_eq!(
            session.active_collectives(),
            0,
            "internal admission released"
        );
    }

    #[test]
    fn op_builder_swaps_operator() {
        let mut session = star_session(3);
        let inputs = vec![vec![3i32; 8], vec![-7; 8], vec![5; 8]];
        let out = session.allreduce(inputs).op(Max).run().unwrap();
        assert_eq!(out.rank(0), &[5i32; 8][..]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut session = star_session(4);
        let err = session.allreduce(vec![vec![1i32; 4]; 3]).run().unwrap_err();
        assert_eq!(
            err,
            SessionError::ShapeMismatch {
                hosts: 4,
                inputs: 3
            }
        );
    }

    #[test]
    fn ragged_and_empty_inputs_are_rejected() {
        let mut session = star_session(2);
        let err = session
            .allreduce(vec![vec![1i32; 4], vec![1i32; 5]])
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::RaggedInputs);
        let err = session
            .allreduce(vec![Vec::<i32>::new(), Vec::new()])
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::EmptyData);
    }

    #[test]
    fn root_out_of_range_is_rejected() {
        let mut session = star_session(3);
        let err = session.reduce(3, vec![vec![1i32; 4]; 3]).run().unwrap_err();
        assert_eq!(err, SessionError::RootOutOfRange { root: 3, hosts: 3 });
    }

    #[test]
    fn admit_reserves_until_release() {
        let mut session = star_session(4);
        let handle = session.admit(1 << 20, false).unwrap();
        assert_eq!(session.active_collectives(), 1);
        assert!(session.reserved_on(handle.root_switch()) > 0);
        let root = handle.root_switch();
        assert!(session.release(handle).is_ok());
        assert_eq!(session.active_collectives(), 0);
        assert_eq!(session.reserved_on(root), 0);
    }

    #[test]
    fn via_runs_under_an_admitted_handle_without_releasing_it() {
        let mut session = star_session(4);
        let mut handle = session.admit(400, false).unwrap();
        handle.set_label("layer0.grad");
        let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r; 100]).collect();
        let out = session.allreduce(inputs).via(&handle).run().unwrap();
        assert_eq!(out.report.collective, handle.id());
        assert_eq!(
            session.active_collectives(),
            1,
            "explicit handles persist across runs"
        );
        session.release(handle).unwrap();
    }

    #[test]
    fn barrier_reports_a_positive_completion_time() {
        let mut session = star_session(3);
        let out = session.barrier().run().unwrap();
        assert!(out.report.completion_ns() > 0);
        assert_eq!(out.num_ranks(), 3);
    }

    #[test]
    fn reproducible_forces_tree_aggregation() {
        let mut session = star_session(4);
        let inputs: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32; 4096]).collect();
        let out = session.allreduce(inputs).reproducible(true).run().unwrap();
        assert_eq!(out.report.algorithm, AggKind::Tree);
    }

    #[test]
    fn loss_without_retransmit_is_rejected_up_front() {
        let (topo, _sw, _hosts) = Topology::star(3, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo).link_drop_prob(0.05).build();
        let err = session
            .allreduce(vec![vec![1i32; 64]; 3])
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::LossWithoutRetransmit);
    }

    #[test]
    fn reproducible_via_a_non_tree_handle_is_rejected() {
        let mut session = star_session(4);
        // Large request ⇒ single-buffer plan (not tree).
        let handle = session.admit(1 << 20, false).unwrap();
        assert_ne!(handle.algorithm(), AggKind::Tree);
        let err = session
            .allreduce(vec![vec![1.0f32; 64]; 4])
            .reproducible(true)
            .via(&handle)
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ReproducibleViaMismatch);
        // A tree-admitted handle honors the request.
        let tree = session.admit(4 << 10, true).unwrap();
        assert_eq!(tree.algorithm(), AggKind::Tree);
        let out = session
            .allreduce(vec![vec![1.0f32; 64]; 4])
            .reproducible(true)
            .via(&tree)
            .run()
            .unwrap();
        assert_eq!(out.report.algorithm, AggKind::Tree);
        session.release(handle).unwrap();
        session.release(tree).unwrap();
    }

    #[test]
    fn cloned_handles_cannot_run_after_release() {
        let mut session = star_session(4);
        let handle = session.admit(4 << 10, false).unwrap();
        let stale = handle.clone();
        session.release(handle).unwrap();
        let err = session
            .allreduce(vec![vec![1i32; 64]; 4])
            .via(&stale)
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::HandleReleased { id: stale.id() });
    }

    #[test]
    fn sparse_on_a_lossy_session_completes_with_correct_results() {
        // Regression for the old `SparseLossUnsupported` early-return:
        // sparse collectives now ride the shard-aware retransmission
        // protocol instead of refusing to run.
        let (topo, _sw, _hosts) = Topology::star(3, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .link_drop_prob(0.05)
            .retransmit_after(Some(100_000))
            .build();
        let pairs: Vec<Vec<(u32, f32)>> = (0..3)
            .map(|r| (0..40).map(|i| (i * 25 + r, 1.0f32)).collect())
            .collect();
        let out = session.sparse_allreduce(1000, pairs).run().unwrap();
        let total: f32 = out.rank(0).iter().sum();
        assert_eq!(total, 120.0, "every contributed pair counted exactly once");
        for r in out.ranks() {
            assert_eq!(r, out.rank(0));
        }
    }

    #[test]
    fn zero_retransmit_timeout_is_rejected_up_front() {
        // `Some(0)` used to arm a zero-delay wake_in loop that flooded
        // the event queue; it must be a typed error for every collective.
        let (topo, _sw, _hosts) = Topology::star(3, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .retransmit_after(Some(0))
            .build();
        let err = session
            .allreduce(vec![vec![1i32; 64]; 3])
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroRetransmitTimeout);
        let err = session
            .sparse_allreduce(100, vec![vec![(1u32, 1.0f32)]; 3])
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroRetransmitTimeout);
    }

    #[test]
    fn sparse_indices_outside_the_domain_are_rejected() {
        let mut session = star_session(2);
        let err = session
            .sparse_allreduce(1000, vec![vec![(5000u32, 1.0f32)], Vec::new()])
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::IndexOutOfRange {
                index: 5000,
                total_elems: 1000
            }
        );
    }

    #[test]
    fn hosts_outside_an_admitted_plan_error_instead_of_panicking() {
        let (topo, ft) = Topology::fat_tree_two_level(2, 2, 1, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .hosts(ft.hosts[..2].to_vec())
            .build();
        let handle = session.admit(4 << 10, false).unwrap();
        // The plan covers hosts 0-1 only; running on 2-3 must be a typed
        // error, not a host_attach HashMap panic.
        let err = session
            .allreduce(vec![vec![1i32; 64]; 2])
            .on_hosts(ft.hosts[2..4].to_vec())
            .via(&handle)
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::HostNotInPlan { host: ft.hosts[2] });
        session.release(handle).unwrap();
    }

    #[test]
    fn window_override_cannot_exceed_the_admitted_reservation() {
        let mut session = star_session(4);
        let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r; 40_000]).collect();
        let probe = session.allreduce(inputs.clone()).run().unwrap();
        let admitted = probe.report.window;
        let out = session
            .allreduce(inputs)
            .window(admitted * 100) // would overrun the switch reservation
            .run()
            .unwrap();
        assert_eq!(out.report.window, admitted, "grow requests are clamped");
    }

    #[test]
    fn double_release_is_a_typed_error() {
        // Releasing a clone of an already-released handle used to return
        // a silent `false`; it must surface as HandleReleased.
        let mut session = star_session(4);
        let handle = session.admit(4 << 10, false).unwrap();
        let dup = handle.clone();
        let id = handle.id();
        assert_eq!(session.release(handle), Ok(()));
        assert_eq!(
            session.release(dup),
            Err(SessionError::HandleReleased { id })
        );
        assert_eq!(session.active_collectives(), 0);
    }

    #[test]
    fn admitting_an_empty_host_set_is_a_typed_error() {
        let mut session = star_session(3);
        let err = session.admit_on(Some(&[]), 1024, false).unwrap_err();
        assert_eq!(err, SessionError::NoHosts);
        assert_eq!(session.active_collectives(), 0, "nothing was admitted");
    }

    #[test]
    fn lend_topology_hands_the_fabric_back() {
        let mut session = star_session(3);
        let nodes = session.lend_topology(|topo| {
            let n = topo.hosts().len();
            (topo, n)
        });
        assert_eq!(nodes, 3);
        // The session still works after the loan.
        let out = session.allreduce(vec![vec![1i32; 8]; 3]).run().unwrap();
        assert_eq!(out.rank(0), &[3i32; 8][..]);
    }

    #[test]
    fn telemetry_capture_rides_a_run_without_perturbing_it() {
        let inputs: Vec<Vec<i32>> = (0..4).map(|r| vec![r; 2048]).collect();
        let mut plain = star_session(4);
        let base = plain.allreduce(inputs.clone()).run().unwrap();
        assert!(base.report.trace.is_none(), "telemetry defaults to off");
        // Lossless runs report zero drops on every link.
        assert!(base.report.net.links.iter().all(|l| l.drops == 0));

        let (topo, _sw, _hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut session = FlareSession::builder(topo)
            .telemetry(flare_net::TelemetryConfig::default())
            .build();
        let out = session.allreduce(inputs).named("grad.dense").run().unwrap();
        assert_eq!(
            out.report.net.makespan, base.report.net.makespan,
            "capture must not change the schedule"
        );
        let trace = out.report.trace.expect("telemetry was enabled");
        assert_eq!(
            trace.tracks,
            vec![(out.report.collective as u64, "grad.dense".to_string())]
        );
        assert!(trace
            .events
            .iter()
            .any(|e| e.kind == flare_net::TraceKind::FlowSubmit));
        assert!(trace
            .events
            .iter()
            .any(|e| e.kind == flare_net::TraceKind::BlockRetire));
        let json = trace.chrome_trace();
        assert!(flare_net::telemetry::validate_chrome_trace(&json).expect("valid trace") > 0);
        assert!(json.contains("grad.dense"));
    }

    #[test]
    fn empty_host_override_is_rejected() {
        let mut session = star_session(3);
        let err = session
            .allreduce(Vec::<Vec<i32>>::new())
            .on_hosts(Vec::new())
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::NoHosts);
    }
}
