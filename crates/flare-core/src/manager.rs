//! The network manager (paper Section 4).
//!
//! Before an allreduce starts, the application asks the network manager to
//! compute a reduction tree over the participating hosts, install handlers
//! on the tree switches, and configure each switch's child ports and
//! parent port. The manager also:
//!
//! * assigns a unique allreduce id so concurrent reductions never mix,
//! * statically partitions switch memory across allreduces and performs
//!   admission control — when a switch is out of memory the manager
//!   *recomputes the tree excluding that switch* and only rejects the
//!   request when no tree exists (paper Section 4).

use std::collections::{HashMap, HashSet, VecDeque};

use flare_model::{select_algorithm, AggKind};
use flare_net::topology::NodeKind;
use flare_net::{NodeId, Topology};

/// One switch's position in a reduction tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeSwitch {
    /// The switch node.
    pub switch: NodeId,
    /// Parent switch (`None` at the root).
    pub parent: Option<NodeId>,
    /// Children in child-index order: hosts and/or switches.
    pub children: Vec<NodeId>,
    /// This switch's child index at its parent.
    pub my_child_index: u16,
    /// Distance from the root (root = 0).
    pub depth: usize,
}

/// A reduction tree over a set of hosts.
#[derive(Debug, Clone)]
pub struct ReductionTree {
    /// The root switch.
    pub root: NodeId,
    /// Per-switch placement, root first (BFS order).
    pub switches: Vec<TreeSwitch>,
    /// For each host: its leaf switch and child index there.
    pub host_attach: HashMap<NodeId, (NodeId, u16)>,
}

impl ReductionTree {
    /// Placement record of `switch`, if it participates.
    pub fn switch(&self, switch: NodeId) -> Option<&TreeSwitch> {
        self.switches.iter().find(|s| s.switch == switch)
    }

    /// The deepest level (leaves have the largest depth).
    pub fn max_depth(&self) -> usize {
        self.switches.iter().map(|s| s.depth).max().unwrap_or(0)
    }
}

/// Compute a reduction tree for `hosts` on `topo`, avoiding `excluded`
/// switches. Chooses the root minimizing `(tree depth, node id)` for
/// determinism; returns `None` when some host is unreachable.
pub fn compute_reduction_tree(
    topo: &Topology,
    hosts: &[NodeId],
    excluded: &HashSet<NodeId>,
) -> Option<ReductionTree> {
    assert!(!hosts.is_empty(), "empty host set");
    let host_set: HashSet<NodeId> = hosts.iter().copied().collect();
    let mut best: Option<(usize, NodeId, ReductionTree)> = None;
    for root in topo.switches() {
        if excluded.contains(&root) {
            continue;
        }
        if let Some(tree) = try_root(topo, &host_set, excluded, root) {
            let key = (tree.max_depth(), root);
            if best
                .as_ref()
                .map(|(d, r, _)| (key.0, key.1) < (*d, *r))
                .unwrap_or(true)
            {
                best = Some((key.0, key.1, tree));
            }
        }
    }
    best.map(|(_, _, t)| t)
}

fn try_root(
    topo: &Topology,
    hosts: &HashSet<NodeId>,
    excluded: &HashSet<NodeId>,
    root: NodeId,
) -> Option<ReductionTree> {
    // BFS from the root through non-excluded switches; hosts are leaves.
    let n = topo.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    let mut order = VecDeque::from([root]);
    let mut bfs: Vec<NodeId> = Vec::new();
    while let Some(u) = order.pop_front() {
        bfs.push(u);
        if topo.kind(u) == NodeKind::Host {
            continue; // hosts do not forward
        }
        for pl in topo.ports_of(u) {
            let v = pl.peer;
            if seen[v.index()] || excluded.contains(&v) {
                continue;
            }
            seen[v.index()] = true;
            parent[v.index()] = Some(u);
            order.push_back(v);
        }
    }
    if hosts.iter().any(|h| !seen[h.index()]) {
        return None;
    }
    // Union of root→host paths: mark useful nodes.
    let mut useful = vec![false; n];
    for &h in hosts {
        let mut cur = h;
        while !useful[cur.index()] {
            useful[cur.index()] = true;
            match parent[cur.index()] {
                Some(p) => cur = p,
                None => break,
            }
        }
    }
    // Build switch records in BFS order (root first), pruning useless ones.
    let mut depth = vec![0usize; n];
    let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &u in &bfs {
        if !useful[u.index()] {
            continue;
        }
        if let Some(p) = parent[u.index()] {
            depth[u.index()] = depth[p.index()] + 1;
            children.entry(p).or_default().push(u);
        }
    }
    let mut switches = Vec::new();
    let mut host_attach = HashMap::new();
    for &u in &bfs {
        if !useful[u.index()] || topo.kind(u) != NodeKind::Switch {
            continue;
        }
        let kids = children.get(&u).cloned().unwrap_or_default();
        if kids.is_empty() {
            continue; // a pass-through switch with no tree children
        }
        let my_child_index = parent[u.index()]
            .map(|p| {
                children[&p]
                    .iter()
                    .position(|&c| c == u)
                    .expect("child recorded") as u16
            })
            .unwrap_or(0);
        for (i, &k) in kids.iter().enumerate() {
            if topo.kind(k) == NodeKind::Host {
                host_attach.insert(k, (u, i as u16));
            }
        }
        switches.push(TreeSwitch {
            switch: u,
            parent: parent[u.index()],
            children: kids,
            my_child_index,
            depth: depth[u.index()],
        });
    }
    // Contract chains: a switch whose only child is another switch still
    // participates (it forwards aggregated data); keep it for simplicity —
    // its children list has one entry and aggregation is a no-op fold.
    Some(ReductionTree {
        root,
        switches,
        host_attach,
    })
}

/// Why an allreduce request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// No reduction tree exists over the non-saturated switches.
    NoTree,
    /// The per-switch limit on concurrent allreduces was reached everywhere.
    TooManyAllreduces,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::NoTree => write!(f, "no feasible reduction tree"),
            AdmissionError::TooManyAllreduces => write!(f, "allreduce slots exhausted"),
        }
    }
}
impl std::error::Error for AdmissionError {}

/// A request to set up an allreduce.
#[derive(Debug, Clone)]
pub struct AllreduceRequest {
    /// Total data size per host, in bytes.
    pub data_bytes: u64,
    /// Packet payload size in bytes.
    pub packet_bytes: usize,
    /// Require bitwise reproducibility (forces tree aggregation).
    pub reproducible: bool,
}

/// An admitted allreduce: id, tree, algorithm and per-switch reservation.
#[derive(Debug, Clone)]
pub struct AllreducePlan {
    /// Unique allreduce identifier.
    pub id: u32,
    /// The reduction tree.
    pub tree: ReductionTree,
    /// Selected aggregation algorithm (paper Section 6.4 policy).
    pub algorithm: AggKind,
    /// Working-memory bytes reserved per tree switch. Reservations depend
    /// on each switch's fanout: a root aggregating 8 children needs more
    /// tree buffers than a leaf aggregating 2.
    pub reserved: HashMap<NodeId, u64>,
    /// Recommended number of in-flight blocks per host (window), from the
    /// Little's-law buffer count ℛ (Section 4.3).
    pub window: usize,
}

impl AllreducePlan {
    /// Largest single-switch reservation (display convenience).
    pub fn max_reserved_bytes(&self) -> u64 {
        self.reserved.values().copied().max().unwrap_or(0)
    }
}

/// The network manager: allreduce ids, memory partitioning, admission.
pub struct NetworkManager {
    /// Working-memory budget per switch (bytes of L1 available for
    /// aggregation buffers).
    budget_per_switch: u64,
    used: HashMap<NodeId, u64>,
    next_id: u32,
    active: HashMap<u32, AllreducePlan>,
}

impl NetworkManager {
    /// Manager with a per-switch working-memory budget (the paper's PsPIN
    /// has 64 clusters × 1 MiB of L1).
    pub fn new(budget_per_switch: u64) -> Self {
        Self {
            budget_per_switch,
            used: HashMap::new(),
            next_id: 1,
            active: HashMap::new(),
        }
    }

    /// Working memory currently reserved on `switch`.
    pub fn used_on(&self, switch: NodeId) -> u64 {
        self.used.get(&switch).copied().unwrap_or(0)
    }

    /// Active allreduce count.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Whether allreduce `id` is still admitted (not torn down).
    pub fn is_active(&self, id: u32) -> bool {
        self.active.contains_key(&id)
    }

    /// The window (per-host in-flight blocks, the paper's ℛ) must cover
    /// the *stagger spread*: with staggered sending, a block stays open at
    /// the switch until the latest-offset host reaches it, so the window
    /// has to exceed `hosts × stagger step` plus pipeline slack, or hosts
    /// deadlock waiting for completions that need their own window slots.
    fn window_for(req: &AllreduceRequest, hosts: usize) -> usize {
        let blocks = (req.data_bytes / req.packet_bytes as u64).max(1);
        (blocks.min(hosts as u64 + 64) as usize).max(8)
    }

    /// Working-memory need of one switch: `M` buffers per block for its
    /// own fanout (algorithm-dependent) × in-flight blocks × packet size.
    fn switch_need(
        req: &AllreduceRequest,
        algorithm: AggKind,
        fanout: usize,
        window: usize,
    ) -> u64 {
        let m = flare_model::dense::buffers_per_block(algorithm, fanout.max(2)).ceil() as u64;
        m * window as u64 * req.packet_bytes as u64
    }

    /// Admit an allreduce over `hosts`, retrying with saturated switches
    /// excluded (the paper's recompute-then-reject behaviour).
    pub fn create_allreduce(
        &mut self,
        topo: &Topology,
        hosts: &[NodeId],
        req: &AllreduceRequest,
    ) -> Result<AllreducePlan, AdmissionError> {
        let algorithm = select_algorithm(req.data_bytes, req.reproducible);
        let mut excluded: HashSet<NodeId> = HashSet::new();
        loop {
            let tree =
                compute_reduction_tree(topo, hosts, &excluded).ok_or(AdmissionError::NoTree)?;
            let window = Self::window_for(req, hosts.len());
            let reserved: HashMap<NodeId, u64> = tree
                .switches
                .iter()
                .map(|s| {
                    (
                        s.switch,
                        Self::switch_need(req, algorithm, s.children.len(), window),
                    )
                })
                .collect();
            // Find a switch that cannot host this allreduce.
            let saturated = tree
                .switches
                .iter()
                .map(|s| s.switch)
                .find(|&sw| self.used_on(sw) + reserved[&sw] > self.budget_per_switch);
            match saturated {
                Some(sw) => {
                    excluded.insert(sw);
                    continue;
                }
                None => {
                    for (&sw, &need) in &reserved {
                        *self.used.entry(sw).or_insert(0) += need;
                    }
                    let plan = AllreducePlan {
                        id: self.next_id,
                        tree,
                        algorithm,
                        reserved,
                        window,
                    };
                    self.next_id += 1;
                    self.active.insert(plan.id, plan.clone());
                    return Ok(plan);
                }
            }
        }
    }

    /// Tear an allreduce down, releasing its reservations.
    pub fn teardown(&mut self, id: u32) -> bool {
        match self.active.remove(&id) {
            Some(plan) => {
                for (&sw, &need) in &plan.reserved {
                    if let Some(u) = self.used.get_mut(&sw) {
                        *u = u.saturating_sub(need);
                    }
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_net::LinkSpec;

    fn fat_tree() -> (Topology, flare_net::topology::FatTree) {
        Topology::fat_tree_two_level(4, 4, 2, LinkSpec::hundred_gig())
    }

    #[test]
    fn star_tree_is_single_switch() {
        let (topo, sw, hosts) = Topology::star(5, LinkSpec::hundred_gig());
        let tree = compute_reduction_tree(&topo, &hosts, &HashSet::new()).unwrap();
        assert_eq!(tree.root, sw);
        assert_eq!(tree.switches.len(), 1);
        assert_eq!(tree.switches[0].children.len(), 5);
        for (i, h) in hosts.iter().enumerate() {
            assert_eq!(tree.host_attach[h], (sw, i as u16));
        }
    }

    #[test]
    fn same_leaf_hosts_use_the_leaf_as_root() {
        let (topo, ft) = fat_tree();
        // All hosts under leaf 0: the leaf switch suffices (depth 0 tree).
        let hosts = &ft.hosts[0..4];
        let tree = compute_reduction_tree(&topo, hosts, &HashSet::new()).unwrap();
        assert_eq!(tree.root, ft.leaves[0]);
        assert_eq!(tree.max_depth(), 0);
    }

    #[test]
    fn cross_leaf_hosts_root_at_a_spine() {
        let (topo, ft) = fat_tree();
        let tree = compute_reduction_tree(&topo, &ft.hosts, &HashSet::new()).unwrap();
        assert!(ft.spines.contains(&tree.root));
        // Root's children are the 4 leaves; each leaf has 4 host children.
        let root_rec = tree.switch(tree.root).unwrap();
        assert_eq!(root_rec.children.len(), 4);
        assert_eq!(tree.switches.len(), 5);
        for s in &tree.switches {
            if s.switch != tree.root {
                assert_eq!(s.parent, Some(tree.root));
                assert_eq!(s.children.len(), 4);
            }
        }
        assert_eq!(tree.host_attach.len(), 16); // all hosts attached
    }

    #[test]
    fn excluding_a_spine_picks_the_other() {
        let (topo, ft) = fat_tree();
        let mut excluded = HashSet::new();
        excluded.insert(ft.spines[0]);
        let tree = compute_reduction_tree(&topo, &ft.hosts, &excluded).unwrap();
        assert_eq!(tree.root, ft.spines[1]);
    }

    #[test]
    fn unreachable_hosts_yield_no_tree() {
        let mut topo = Topology::new();
        let h0 = topo.add_host("h0");
        let h1 = topo.add_host("h1");
        let s0 = topo.add_switch("s0");
        topo.connect(h0, s0, LinkSpec::hundred_gig());
        // h1 is not connected at all.
        assert!(compute_reduction_tree(&topo, &[h0, h1], &HashSet::new()).is_none());
        let _ = h1;
    }

    #[test]
    fn admission_reserves_and_releases_memory() {
        let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut mgr = NetworkManager::new(64 << 20);
        let req = AllreduceRequest {
            data_bytes: 1 << 20,
            packet_bytes: 1024,
            reproducible: false,
        };
        let plan = mgr.create_allreduce(&topo, &hosts, &req).unwrap();
        assert_eq!(plan.algorithm, AggKind::SingleBuffer); // > 512 KiB
        assert!(mgr.used_on(plan.tree.root) > 0);
        assert!(mgr.teardown(plan.id));
        assert_eq!(mgr.used_on(plan.tree.root), 0);
        assert!(!mgr.teardown(plan.id), "double teardown refused");
    }

    #[test]
    fn admission_reroutes_around_saturated_spine() {
        let (topo, ft) = fat_tree();
        let mut mgr = NetworkManager::new(1 << 20);
        let req = AllreduceRequest {
            data_bytes: 64 << 10,
            packet_bytes: 1024,
            reproducible: true,
        };
        // Saturate spine 0 artificially.
        mgr.used.insert(ft.spines[0], 1 << 20);
        let plan = mgr.create_allreduce(&topo, &ft.hosts, &req).unwrap();
        assert_eq!(
            plan.tree.root, ft.spines[1],
            "tree recomputed around full switch"
        );
    }

    #[test]
    fn admission_rejects_when_everything_is_full() {
        let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut mgr = NetworkManager::new(100); // absurdly small budget
        let req = AllreduceRequest {
            data_bytes: 1 << 20,
            packet_bytes: 1024,
            reproducible: false,
        };
        assert_eq!(
            mgr.create_allreduce(&topo, &hosts, &req).unwrap_err(),
            AdmissionError::NoTree
        );
    }

    #[test]
    fn ids_are_unique_across_concurrent_allreduces() {
        let (topo, _sw, hosts) = Topology::star(4, LinkSpec::hundred_gig());
        let mut mgr = NetworkManager::new(64 << 20);
        let req = AllreduceRequest {
            data_bytes: 4 << 10,
            packet_bytes: 1024,
            reproducible: false,
        };
        let a = mgr.create_allreduce(&topo, &hosts, &req).unwrap();
        let b = mgr.create_allreduce(&topo, &hosts, &req).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(mgr.active_count(), 2);
        assert_eq!(a.algorithm, AggKind::Tree); // small data ⇒ tree
    }
}
