//! Flare wire format.
//!
//! Hosts add "a small header containing the identifier of the allreduce and
//! of the packet within that allreduce" (paper Section 4). The header here
//! is an explicit 16-byte layout; sparse payloads interleave `u32` indexes
//! with values (paper Section 7: "packets also carry the position of each
//! element inside the block").

use bytes::Bytes;

use crate::dtype::Element;

/// Size of the fixed Flare header in bytes.
pub const HEADER_BYTES: usize = 16;

/// Packet role within an allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketKind {
    /// Dense contribution from a child (host or sub-switch).
    DenseContrib = 0,
    /// Sparse contribution: payload is (index, value) pairs.
    SparseContrib = 1,
    /// Fully-aggregated dense result travelling down the tree.
    DenseResult = 2,
    /// Aggregated (or spilled) sparse data: (index, value) pairs.
    SparseResult = 3,
    /// Spilled sparse elements forwarded unaggregated (extra traffic).
    SparseSpill = 4,
}

impl PacketKind {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => PacketKind::DenseContrib,
            1 => PacketKind::SparseContrib,
            2 => PacketKind::DenseResult,
            3 => PacketKind::SparseResult,
            4 => PacketKind::SparseSpill,
            _ => return None,
        })
    }
}

/// The parsed Flare packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Allreduce identifier (assigned by the network manager).
    pub allreduce: u32,
    /// Reduction-block index.
    pub block: u32,
    /// Child index within the reduction tree (the paper's port `i`).
    pub child: u16,
    /// Packet role.
    pub kind: PacketKind,
    /// Sparse only: set on the last shard of a block from this child; the
    /// accompanying `shard_count` then says how many shards were sent
    /// (paper Section 7, "Block split").
    pub last_shard: bool,
    /// Number of shards this child split the block into (valid when
    /// `last_shard`).
    pub shard_count: u16,
    /// Number of elements in the payload (0 for an empty sparse block).
    pub elem_count: u16,
}

impl Header {
    /// Serialize into 16 bytes.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..4].copy_from_slice(&self.allreduce.to_le_bytes());
        out[4..8].copy_from_slice(&self.block.to_le_bytes());
        out[8..10].copy_from_slice(&self.child.to_le_bytes());
        out[10] = self.kind as u8;
        out[11] = u8::from(self.last_shard);
        out[12..14].copy_from_slice(&self.shard_count.to_le_bytes());
        out[14..16].copy_from_slice(&self.elem_count.to_le_bytes());
        out
    }

    /// Parse from a packet payload; returns the header and the body bytes.
    pub fn decode(buf: &[u8]) -> Result<(Header, &[u8]), WireError> {
        if buf.len() < HEADER_BYTES {
            return Err(WireError::Truncated);
        }
        let kind = PacketKind::from_u8(buf[10]).ok_or(WireError::BadKind(buf[10]))?;
        let h = Header {
            allreduce: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            block: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            child: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
            kind,
            last_shard: buf[11] != 0,
            shard_count: u16::from_le_bytes(buf[12..14].try_into().unwrap()),
            elem_count: u16::from_le_bytes(buf[14..16].try_into().unwrap()),
        };
        Ok((h, &buf[HEADER_BYTES..]))
    }
}

/// Wire format violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the header or declared payload.
    Truncated,
    /// Unknown packet kind byte.
    BadKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadKind(k) => write!(f, "unknown packet kind {k}"),
        }
    }
}
impl std::error::Error for WireError {}

/// Encode a dense packet: header + contiguous element values.
pub fn encode_dense<T: Element>(mut header: Header, values: &[T]) -> Bytes {
    header.elem_count = values.len() as u16;
    let mut out = Vec::with_capacity(HEADER_BYTES + values.len() * T::WIRE_BYTES);
    out.extend_from_slice(&header.encode());
    for &v in values {
        v.write_le(&mut out);
    }
    Bytes::from(out)
}

/// Decode a dense packet body previously produced by [`encode_dense`].
pub fn decode_dense<T: Element>(buf: &[u8]) -> Result<(Header, Vec<T>), WireError> {
    let (h, body) = Header::decode(buf)?;
    let need = h.elem_count as usize * T::WIRE_BYTES;
    if body.len() < need {
        return Err(WireError::Truncated);
    }
    let vals = body[..need]
        .chunks_exact(T::WIRE_BYTES)
        .map(T::read_le)
        .collect();
    Ok((h, vals))
}

/// Encode a sparse packet: header + (u32 index, value) pairs. Indexes are
/// block-relative.
pub fn encode_sparse<T: Element>(mut header: Header, pairs: &[(u32, T)]) -> Bytes {
    header.elem_count = pairs.len() as u16;
    let mut out = Vec::with_capacity(HEADER_BYTES + pairs.len() * (4 + T::WIRE_BYTES));
    out.extend_from_slice(&header.encode());
    for &(idx, v) in pairs {
        out.extend_from_slice(&idx.to_le_bytes());
        v.write_le(&mut out);
    }
    Bytes::from(out)
}

/// Decode a sparse packet body previously produced by [`encode_sparse`].
pub fn decode_sparse<T: Element>(buf: &[u8]) -> Result<(Header, Vec<(u32, T)>), WireError> {
    let (h, body) = Header::decode(buf)?;
    let stride = 4 + T::WIRE_BYTES;
    let need = h.elem_count as usize * stride;
    if body.len() < need {
        return Err(WireError::Truncated);
    }
    let pairs = body[..need]
        .chunks_exact(stride)
        .map(|c| {
            let idx = u32::from_le_bytes(c[0..4].try_into().unwrap());
            (idx, T::read_le(&c[4..]))
        })
        .collect();
    Ok((h, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(kind: PacketKind) -> Header {
        Header {
            allreduce: 0xDEAD,
            block: 77,
            child: 5,
            kind,
            last_shard: true,
            shard_count: 3,
            elem_count: 0,
        }
    }

    #[test]
    fn header_roundtrips() {
        let h = header(PacketKind::SparseContrib);
        let enc = h.encode();
        let (back, rest) = Header::decode(&enc).unwrap();
        assert_eq!(back, Header { elem_count: 0, ..h });
        assert!(rest.is_empty());
    }

    #[test]
    fn dense_roundtrip_preserves_values() {
        let vals: Vec<i32> = (0..256).map(|i| i * 3 - 100).collect();
        let pkt = encode_dense(header(PacketKind::DenseContrib), &vals);
        assert_eq!(pkt.len(), HEADER_BYTES + 1024);
        let (h, back) = decode_dense::<i32>(&pkt).unwrap();
        assert_eq!(h.elem_count, 256);
        assert_eq!(back, vals);
    }

    #[test]
    fn sparse_roundtrip_preserves_pairs() {
        let pairs: Vec<(u32, f32)> = vec![(0, 1.5), (17, -2.25), (1023, 3.0)];
        let pkt = encode_sparse(header(PacketKind::SparseContrib), &pairs);
        assert_eq!(pkt.len(), HEADER_BYTES + 3 * 8);
        let (h, back) = decode_sparse::<f32>(&pkt).unwrap();
        assert_eq!(h.elem_count, 3);
        assert_eq!(back, pairs);
    }

    #[test]
    fn empty_sparse_block_packet_is_header_only() {
        // Paper Section 7 "Empty blocks": still send a packet so the
        // children counter advances.
        let pkt = encode_sparse::<f32>(header(PacketKind::SparseContrib), &[]);
        assert_eq!(pkt.len(), HEADER_BYTES);
        let (h, pairs) = decode_sparse::<f32>(&pkt).unwrap();
        assert_eq!(h.elem_count, 0);
        assert!(pairs.is_empty());
        assert!(h.last_shard);
    }

    #[test]
    fn truncated_and_bad_kind_are_rejected() {
        assert_eq!(Header::decode(&[0u8; 8]).unwrap_err(), WireError::Truncated);
        let mut raw = header(PacketKind::DenseContrib).encode();
        raw[10] = 200;
        assert_eq!(Header::decode(&raw).unwrap_err(), WireError::BadKind(200));
        // Declared elements but missing body.
        let mut h = header(PacketKind::DenseContrib);
        h.elem_count = 4;
        let enc = h.encode();
        assert_eq!(decode_dense::<i32>(&enc).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn kind_codes_are_stable() {
        for (k, v) in [
            (PacketKind::DenseContrib, 0u8),
            (PacketKind::SparseContrib, 1),
            (PacketKind::DenseResult, 2),
            (PacketKind::SparseResult, 3),
            (PacketKind::SparseSpill, 4),
        ] {
            assert_eq!(k as u8, v);
            assert_eq!(PacketKind::from_u8(v), Some(k));
        }
        assert_eq!(PacketKind::from_u8(9), None);
    }
}
