//! Flare wire format.
//!
//! Hosts add "a small header containing the identifier of the allreduce and
//! of the packet within that allreduce" (paper Section 4). The header here
//! is an explicit 16-byte layout; sparse payloads interleave `u32` indexes
//! with values (paper Section 7: "packets also carry the position of each
//! element inside the block").

use bytes::Bytes;

use crate::dtype::Element;

/// Size of the fixed Flare header in bytes.
pub const HEADER_BYTES: usize = 16;

/// Packet role within an allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacketKind {
    /// Dense contribution from a child (host or sub-switch).
    DenseContrib = 0,
    /// Sparse contribution: payload is (index, value) pairs.
    SparseContrib = 1,
    /// Fully-aggregated dense result travelling down the tree.
    DenseResult = 2,
    /// Aggregated (or spilled) sparse data: (index, value) pairs.
    SparseResult = 3,
    /// Spilled sparse elements forwarded unaggregated (extra traffic).
    SparseSpill = 4,
}

impl PacketKind {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => PacketKind::DenseContrib,
            1 => PacketKind::SparseContrib,
            2 => PacketKind::DenseResult,
            3 => PacketKind::SparseResult,
            4 => PacketKind::SparseSpill,
            _ => return None,
        })
    }
}

/// The parsed Flare packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Allreduce identifier (assigned by the network manager).
    pub allreduce: u32,
    /// Reduction-block index.
    pub block: u32,
    /// Child index within the reduction tree (the paper's port `i`).
    pub child: u16,
    /// Packet role.
    pub kind: PacketKind,
    /// Sparse only: set on the last shard of a block from this child; the
    /// accompanying `shard_count` then says how many shards were sent
    /// (paper Section 7, "Block split").
    pub last_shard: bool,
    /// Sparse shard-sequencing field, interpreted by `last_shard`:
    ///
    /// * `last_shard == true` — how many shards this child split the
    ///   block into (the paper's announced total). Shards are emitted in
    ///   sequence order, so the last shard's own sequence number is
    ///   `shard_count - 1`.
    /// * `last_shard == false` — this shard's 0-based sequence number
    ///   within `(block, child)`.
    ///
    /// Together with `last_shard` this gives every shard a unique
    /// identity (see [`Header::shard_index`]), which is what makes
    /// retransmitted shards rejectable instead of double-reduced.
    pub shard_count: u16,
    /// Number of elements in the payload (0 for an empty sparse block).
    pub elem_count: u16,
}

impl Header {
    /// Serialize into 16 bytes.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..4].copy_from_slice(&self.allreduce.to_le_bytes());
        out[4..8].copy_from_slice(&self.block.to_le_bytes());
        out[8..10].copy_from_slice(&self.child.to_le_bytes());
        out[10] = self.kind as u8;
        out[11] = u8::from(self.last_shard);
        out[12..14].copy_from_slice(&self.shard_count.to_le_bytes());
        out[14..16].copy_from_slice(&self.elem_count.to_le_bytes());
        out
    }

    /// Parse from a packet payload; returns the header and the body bytes.
    pub fn decode(buf: &[u8]) -> Result<(Header, &[u8]), WireError> {
        if buf.len() < HEADER_BYTES {
            return Err(WireError::Truncated);
        }
        let kind = PacketKind::from_u8(buf[10]).ok_or(WireError::BadKind(buf[10]))?;
        let h = Header {
            allreduce: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            block: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            child: u16::from_le_bytes(buf[8..10].try_into().unwrap()),
            kind,
            last_shard: buf[11] != 0,
            shard_count: u16::from_le_bytes(buf[12..14].try_into().unwrap()),
            elem_count: u16::from_le_bytes(buf[14..16].try_into().unwrap()),
        };
        Ok((h, &buf[HEADER_BYTES..]))
    }

    /// This shard's 0-based sequence number within `(block, child)`:
    /// carried directly on non-last shards, derived as `shard_count - 1`
    /// on the last shard (shards are emitted in sequence order). Only
    /// meaningful for sparse packets.
    pub fn shard_index(&self) -> u16 {
        if self.last_shard {
            self.shard_count.saturating_sub(1)
        } else {
            self.shard_count
        }
    }

    /// The `shard_count` wire value for shard number `seq` of a sequence
    /// announcing `total` shards: the total on the last shard, the
    /// sequence number otherwise — the single encode-side definition of
    /// the field's dual use, inverse of [`Header::shard_index`] (every
    /// sender must emit shards in sequence order so the last shard's own
    /// number is `total - 1`).
    pub fn shard_seq_field(last: bool, seq: u16, total: u16) -> u16 {
        if last {
            total
        } else {
            seq
        }
    }
}

/// Wire format violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the header or declared payload.
    Truncated,
    /// Unknown packet kind byte.
    BadKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadKind(k) => write!(f, "unknown packet kind {k}"),
        }
    }
}
impl std::error::Error for WireError {}

/// A borrowed, zero-copy view over the dense values of a packet body.
///
/// Values are decoded lazily with unaligned little-endian reads as the
/// view is iterated — nothing is materialized, so the switch datapath can
/// fold a contribution straight into its accumulation buffer without a
/// per-packet `Vec<T>`. Produced by [`DenseView::parse`]; the legacy
/// [`decode_dense`] is a thin collecting wrapper over this type.
#[derive(Debug, Clone, Copy)]
pub struct DenseView<'a, T> {
    body: &'a [u8],
    _elem: std::marker::PhantomData<T>,
}

impl<'a, T: Element> DenseView<'a, T> {
    /// Parse a packet buffer into its header and a value view.
    pub fn parse(buf: &'a [u8]) -> Result<(Header, Self), WireError> {
        let (h, body) = Header::decode(buf)?;
        let need = h.elem_count as usize * T::WIRE_BYTES;
        if body.len() < need {
            return Err(WireError::Truncated);
        }
        Ok((
            h,
            Self {
                body: &body[..need],
                _elem: std::marker::PhantomData,
            },
        ))
    }

    /// Number of values in the packet.
    pub fn len(&self) -> usize {
        self.body.len() / T::WIRE_BYTES
    }

    /// Whether the packet carries no values.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Value `i` (unaligned read; `i` must be `< len()`).
    pub fn get(&self, i: usize) -> T {
        T::read_le(&self.body[i * T::WIRE_BYTES..])
    }

    /// Iterate the values without materializing them.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = T> + 'a {
        self.body.chunks_exact(T::WIRE_BYTES).map(T::read_le)
    }

    /// Append every value to `out` (the first-contribution copy; bulk
    /// vectorized path).
    pub fn append_to(&self, out: &mut Vec<T>) {
        T::read_slice_le(self.body, out);
    }

    /// Copy the values over `dst` (`dst.len()` values are written; the
    /// view must hold at least that many). Bulk vectorized path that
    /// never reads `dst`.
    pub fn copy_to_slice(&self, dst: &mut [T]) {
        let n = dst.len().min(self.len());
        T::copy_slice_le(&self.body[..n * T::WIRE_BYTES], &mut dst[..n]);
    }

    /// Combine the values elementwise into `acc` with `f` (`acc.len()`
    /// must equal `len()`). This is the switch aggregation inner loop.
    pub fn fold_with(&self, acc: &mut [T], f: impl Fn(T, T) -> T) {
        debug_assert_eq!(acc.len(), self.len(), "block size mismatch");
        T::fold_slice_le(self.body, acc, f);
    }
}

/// A borrowed, zero-copy view over the `(index, value)` pairs of a sparse
/// packet body. See [`DenseView`]; [`decode_sparse`] is the collecting
/// wrapper.
#[derive(Debug, Clone, Copy)]
pub struct SparseView<'a, T> {
    body: &'a [u8],
    _elem: std::marker::PhantomData<T>,
}

impl<'a, T: Element> SparseView<'a, T> {
    const STRIDE: usize = 4 + T::WIRE_BYTES;

    /// Parse a packet buffer into its header and a pair view.
    pub fn parse(buf: &'a [u8]) -> Result<(Header, Self), WireError> {
        let (h, body) = Header::decode(buf)?;
        let need = h.elem_count as usize * Self::STRIDE;
        if body.len() < need {
            return Err(WireError::Truncated);
        }
        Ok((
            h,
            Self {
                body: &body[..need],
                _elem: std::marker::PhantomData,
            },
        ))
    }

    /// Number of pairs in the packet.
    pub fn len(&self) -> usize {
        self.body.len() / Self::STRIDE
    }

    /// Whether the packet carries no pairs.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Pair `i` (unaligned read; `i` must be `< len()`).
    pub fn get(&self, i: usize) -> (u32, T) {
        let c = &self.body[i * Self::STRIDE..];
        let idx = u32::from_le_bytes(c[0..4].try_into().unwrap());
        (idx, T::read_le(&c[4..]))
    }

    /// Iterate the pairs without materializing them.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (u32, T)> + 'a {
        self.body.chunks_exact(Self::STRIDE).map(|c| {
            let idx = u32::from_le_bytes(c[0..4].try_into().unwrap());
            (idx, T::read_le(&c[4..]))
        })
    }

    /// Call `f` for every `(index, value)` pair — the bulk fixed-stride
    /// decode path (`as_chunks`-based, like the dense decoder): the
    /// sparse store insertion loops run over this instead of [`Self::iter`]
    /// so the stride decode has no per-pair bounds checks.
    pub fn for_each(&self, f: impl FnMut(u32, T)) {
        T::for_each_pair_le(self.body, f);
    }

    /// Append every pair to `out` (bulk vectorized path).
    pub fn append_to(&self, out: &mut Vec<(u32, T)>) {
        T::read_pairs_le(self.body, out);
    }
}

/// Serialize a dense packet into a caller-provided (typically pooled)
/// buffer: header + contiguous element values. The buffer is cleared
/// first; spare capacity is kept.
pub fn encode_dense_into<T: Element>(mut header: Header, values: &[T], out: &mut Vec<u8>) {
    header.elem_count = values.len() as u16;
    out.clear();
    out.reserve(HEADER_BYTES + values.len() * T::WIRE_BYTES);
    out.extend_from_slice(&header.encode());
    T::write_slice_le(values, out);
}

/// Encode a dense packet: header + contiguous element values.
pub fn encode_dense<T: Element>(header: Header, values: &[T]) -> Bytes {
    let mut out = Vec::new();
    encode_dense_into(header, values, &mut out);
    Bytes::from(out)
}

/// Decode a dense packet body previously produced by [`encode_dense`].
pub fn decode_dense<T: Element>(buf: &[u8]) -> Result<(Header, Vec<T>), WireError> {
    let (h, view) = DenseView::<T>::parse(buf)?;
    Ok((h, view.iter().collect()))
}

/// Serialize a sparse packet into a caller-provided (typically pooled)
/// buffer: header + (u32 index, value) pairs. Indexes are block-relative.
pub fn encode_sparse_into<T: Element>(mut header: Header, pairs: &[(u32, T)], out: &mut Vec<u8>) {
    header.elem_count = pairs.len() as u16;
    out.clear();
    out.reserve(HEADER_BYTES + pairs.len() * (4 + T::WIRE_BYTES));
    out.extend_from_slice(&header.encode());
    T::write_pairs_le(pairs, out);
}

/// Encode a sparse packet: header + (u32 index, value) pairs. Indexes are
/// block-relative.
pub fn encode_sparse<T: Element>(header: Header, pairs: &[(u32, T)]) -> Bytes {
    let mut out = Vec::new();
    encode_sparse_into(header, pairs, &mut out);
    Bytes::from(out)
}

/// Decode a sparse packet body previously produced by [`encode_sparse`].
pub fn decode_sparse<T: Element>(buf: &[u8]) -> Result<(Header, Vec<(u32, T)>), WireError> {
    let (h, view) = SparseView::<T>::parse(buf)?;
    let mut pairs = Vec::new();
    view.append_to(&mut pairs);
    Ok((h, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(kind: PacketKind) -> Header {
        Header {
            allreduce: 0xDEAD,
            block: 77,
            child: 5,
            kind,
            last_shard: true,
            shard_count: 3,
            elem_count: 0,
        }
    }

    #[test]
    fn header_roundtrips() {
        let h = header(PacketKind::SparseContrib);
        let enc = h.encode();
        let (back, rest) = Header::decode(&enc).unwrap();
        assert_eq!(back, Header { elem_count: 0, ..h });
        assert!(rest.is_empty());
    }

    #[test]
    fn dense_roundtrip_preserves_values() {
        let vals: Vec<i32> = (0..256).map(|i| i * 3 - 100).collect();
        let pkt = encode_dense(header(PacketKind::DenseContrib), &vals);
        assert_eq!(pkt.len(), HEADER_BYTES + 1024);
        let (h, back) = decode_dense::<i32>(&pkt).unwrap();
        assert_eq!(h.elem_count, 256);
        assert_eq!(back, vals);
    }

    #[test]
    fn sparse_roundtrip_preserves_pairs() {
        let pairs: Vec<(u32, f32)> = vec![(0, 1.5), (17, -2.25), (1023, 3.0)];
        let pkt = encode_sparse(header(PacketKind::SparseContrib), &pairs);
        assert_eq!(pkt.len(), HEADER_BYTES + 3 * 8);
        let (h, back) = decode_sparse::<f32>(&pkt).unwrap();
        assert_eq!(h.elem_count, 3);
        assert_eq!(back, pairs);
    }

    #[test]
    fn empty_sparse_block_packet_is_header_only() {
        // Paper Section 7 "Empty blocks": still send a packet so the
        // children counter advances.
        let pkt = encode_sparse::<f32>(header(PacketKind::SparseContrib), &[]);
        assert_eq!(pkt.len(), HEADER_BYTES);
        let (h, pairs) = decode_sparse::<f32>(&pkt).unwrap();
        assert_eq!(h.elem_count, 0);
        assert!(pairs.is_empty());
        assert!(h.last_shard);
    }

    #[test]
    fn truncated_and_bad_kind_are_rejected() {
        assert_eq!(Header::decode(&[0u8; 8]).unwrap_err(), WireError::Truncated);
        let mut raw = header(PacketKind::DenseContrib).encode();
        raw[10] = 200;
        assert_eq!(Header::decode(&raw).unwrap_err(), WireError::BadKind(200));
        // Declared elements but missing body.
        let mut h = header(PacketKind::DenseContrib);
        h.elem_count = 4;
        let enc = h.encode();
        assert_eq!(decode_dense::<i32>(&enc).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn dense_view_matches_decode_dense() {
        let vals: Vec<i32> = (0..300).map(|i| i * 7 - 950).collect();
        let pkt = encode_dense(header(PacketKind::DenseContrib), &vals);
        let (h_old, old) = decode_dense::<i32>(&pkt).unwrap();
        let (h_new, view) = DenseView::<i32>::parse(&pkt).unwrap();
        assert_eq!(h_old, h_new);
        assert_eq!(view.len(), old.len());
        assert_eq!(view.iter().collect::<Vec<_>>(), old);
        assert_eq!(view.get(0), old[0]);
        assert_eq!(view.get(299), old[299]);
        let mut copied = Vec::new();
        view.append_to(&mut copied);
        assert_eq!(copied, old);
    }

    #[test]
    fn sparse_view_matches_decode_sparse() {
        let pairs: Vec<(u32, f32)> = (0..77).map(|i| (i * 13, i as f32 * 0.25 - 3.0)).collect();
        let pkt = encode_sparse(header(PacketKind::SparseContrib), &pairs);
        let (h_old, old) = decode_sparse::<f32>(&pkt).unwrap();
        let (h_new, view) = SparseView::<f32>::parse(&pkt).unwrap();
        assert_eq!(h_old, h_new);
        assert_eq!(view.len(), 77);
        assert_eq!(view.iter().collect::<Vec<_>>(), old);
        assert_eq!(view.get(76), old[76]);
    }

    #[test]
    fn sparse_bulk_paths_match_elementwise_for_every_type() {
        // The as_chunks stride decoder must agree with the per-pair
        // iterator for every built-in element type (different strides).
        fn check<T: Element>(mk: impl Fn(u32) -> T) {
            let pairs: Vec<(u32, T)> = (0..97).map(|i| (i * 31 + 5, mk(i))).collect();
            let pkt = encode_sparse(header(PacketKind::SparseContrib), &pairs);
            let (_, view) = SparseView::<T>::parse(&pkt).unwrap();
            let elementwise: Vec<(u32, T)> = view.iter().collect();
            let mut via_for_each = Vec::new();
            view.for_each(|i, v| via_for_each.push((i, v)));
            assert_eq!(via_for_each, elementwise, "{}", T::NAME);
            let mut via_append = Vec::new();
            view.append_to(&mut via_append);
            assert_eq!(via_append, elementwise, "{}", T::NAME);
            assert_eq!(elementwise, pairs, "{}", T::NAME);
        }
        check::<i32>(|i| i as i32 * -3);
        check::<i16>(|i| i as i16);
        check::<i8>(|i| (i % 100) as i8);
        check::<f32>(|i| i as f32 * 0.75 - 9.0);
        check::<crate::dtype::F16>(|i| crate::dtype::F16::from_f32(i as f32 / 4.0));
    }

    #[test]
    fn sparse_bulk_encode_matches_elementwise_layout() {
        // write_pairs_le (block-buffered) must produce byte-identical
        // encodings to the original per-pair loop.
        fn check<T: Element>(pairs: Vec<(u32, T)>) {
            let mut reference = Vec::new();
            for &(idx, v) in &pairs {
                reference.extend_from_slice(&idx.to_le_bytes());
                v.write_le(&mut reference);
            }
            let mut bulk = Vec::new();
            T::write_pairs_le(&pairs, &mut bulk);
            assert_eq!(bulk, reference, "{}", T::NAME);
        }
        check::<f32>((0..200).map(|i| (i * 7, i as f32 * 1.5)).collect());
        check::<i16>((0..65).map(|i| (i, i as i16 - 30)).collect());
        check::<i8>(vec![(0, -1), (u32::MAX, i8::MAX)]);
    }

    #[test]
    fn views_read_unaligned_payload_offsets() {
        // Shift the whole packet by 1..3 bytes inside a larger buffer so
        // every element read is misaligned; values must still decode.
        let vals: Vec<i32> = (0..32).map(|i| i * 1_000_003).collect();
        let pkt = encode_dense(header(PacketKind::DenseContrib), &vals);
        for shift in 1usize..4 {
            let mut shifted = vec![0u8; shift];
            shifted.extend_from_slice(&pkt);
            let (_, view) = DenseView::<i32>::parse(&shifted[shift..]).unwrap();
            assert_eq!(view.iter().collect::<Vec<_>>(), vals, "shift {shift}");
        }
        let pairs: Vec<(u32, f32)> = vec![(3, 1.5), (9, -2.0)];
        let spkt = encode_sparse(header(PacketKind::SparseContrib), &pairs);
        let mut shifted = vec![0u8; 3];
        shifted.extend_from_slice(&spkt);
        let (_, view) = SparseView::<f32>::parse(&shifted[3..]).unwrap();
        assert_eq!(view.iter().collect::<Vec<_>>(), pairs);
    }

    #[test]
    fn views_reject_truncated_buffers() {
        let vals = vec![1i32, 2, 3, 4];
        let pkt = encode_dense(header(PacketKind::DenseContrib), &vals);
        // Chop the body: header promises 4 elements, body has fewer.
        for cut in 1..=(4 * 4) {
            let short = &pkt[..pkt.len() - cut];
            assert_eq!(
                DenseView::<i32>::parse(short).unwrap_err(),
                WireError::Truncated,
                "cut {cut}"
            );
        }
        assert_eq!(
            DenseView::<i32>::parse(&pkt[..8]).unwrap_err(),
            WireError::Truncated
        );
        let pairs = vec![(1u32, 2.0f32)];
        let spkt = encode_sparse(header(PacketKind::SparseContrib), &pairs);
        assert_eq!(
            SparseView::<f32>::parse(&spkt[..spkt.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn encode_into_reuses_the_buffer_and_matches_encode() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let reference = encode_dense(header(PacketKind::DenseContrib), &vals);
        let mut buf = vec![0xAAu8; 7]; // stale content must be cleared
        encode_dense_into(header(PacketKind::DenseContrib), &vals, &mut buf);
        assert_eq!(&buf[..], &reference[..]);
        let cap = buf.capacity();
        encode_dense_into(header(PacketKind::DenseContrib), &vals, &mut buf);
        assert_eq!(buf.capacity(), cap, "steady-state encode must not grow");

        let pairs: Vec<(u32, i16)> = vec![(5, -3), (1000, 22)];
        let sref = encode_sparse(header(PacketKind::SparseContrib), &pairs);
        let mut sbuf = Vec::new();
        encode_sparse_into(header(PacketKind::SparseContrib), &pairs, &mut sbuf);
        assert_eq!(&sbuf[..], &sref[..]);
    }

    #[test]
    fn kind_codes_are_stable() {
        for (k, v) in [
            (PacketKind::DenseContrib, 0u8),
            (PacketKind::SparseContrib, 1),
            (PacketKind::DenseResult, 2),
            (PacketKind::SparseResult, 3),
            (PacketKind::SparseSpill, 4),
        ] {
            assert_eq!(k as u8, v);
            assert_eq!(PacketKind::from_u8(v), Some(k));
        }
        assert_eq!(PacketKind::from_u8(9), None);
    }
}
