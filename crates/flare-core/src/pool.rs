//! Steady-state allocation recycling for the per-packet datapath.
//!
//! The paper's premise is that in-network aggregation wins by touching
//! each byte as few times as possible; the simulator must therefore not
//! spend its time in the allocator. Two pieces make the per-packet path
//! allocation-free once warmed up:
//!
//! * [`BufferPool`] — a free-list of `Vec`s (aggregation buffers, encode
//!   scratch, spill batches). Completed blocks return their buffers; new
//!   blocks take them back. Hit/miss counters make "zero allocations per
//!   packet in steady state" a testable property instead of a hope.
//! * [`BlockSlab`] — open-block state indexed by `block % slots` instead
//!   of a `HashMap` probe per packet. Block ids are dense and windowed
//!   (hosts keep at most `window` consecutive ids in flight), so the
//!   direct-mapped slot almost always hits; rare collisions fall back to
//!   an overflow map, and ids below the retirement floor are rejected as
//!   out-of-window.

use std::collections::HashMap;

/// Counters exposed by [`BufferPool`] for steady-state assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers requested.
    pub gets: u64,
    /// Requests served from the free-list (no allocation).
    pub hits: u64,
    /// Buffers returned to the free-list.
    pub puts: u64,
}

impl PoolStats {
    /// Requests that had to allocate (`gets - hits`).
    pub fn misses(&self) -> u64 {
        self.gets - self.hits
    }

    /// Fraction of requests served without allocating (1.0 for an idle
    /// pool).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

/// A free-list of `Vec<E>` buffers with reuse accounting.
#[derive(Debug)]
pub struct BufferPool<E> {
    free: Vec<Vec<E>>,
    max_free: usize,
    stats: PoolStats,
}

impl<E> Default for BufferPool<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BufferPool<E> {
    /// Default free-list bound: enough for every concurrently-open block
    /// of a windowed allreduce without holding a whole run's buffers.
    pub const DEFAULT_MAX_FREE: usize = 1024;

    /// Pool with the default free-list bound.
    pub fn new() -> Self {
        Self::with_max_free(Self::DEFAULT_MAX_FREE)
    }

    /// Pool keeping at most `max_free` idle buffers (excess is dropped).
    pub fn with_max_free(max_free: usize) -> Self {
        Self {
            free: Vec::new(),
            max_free,
            stats: PoolStats::default(),
        }
    }

    /// Take a cleared buffer with capacity for at least `cap` elements.
    /// Served from the free-list when possible; counts a hit either way
    /// the buffer came from the list (growing a recycled buffer is
    /// amortized away once sizes stabilize).
    pub fn get(&mut self, cap: usize) -> Vec<E> {
        self.stats.gets += 1;
        match self.free.pop() {
            Some(mut v) => {
                self.stats.hits += 1;
                v.clear();
                v.reserve(cap);
                v
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a buffer to the free-list (dropped if the list is full).
    pub fn put(&mut self, mut v: Vec<E>) {
        if self.free.len() < self.max_free {
            v.clear();
            self.free.push(v);
            self.stats.puts += 1;
        }
    }

    /// Reuse accounting.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl BufferPool<u8> {
    /// Reclaim a consumed packet payload into the free-list when this is
    /// the last reference to it (multicast copies still in flight keep
    /// their shared buffer alive and are simply not reclaimed).
    pub fn reclaim(&mut self, payload: bytes::Bytes) {
        if let Ok(v) = payload.try_into_vec() {
            self.put(v);
        }
    }
}

/// Replay cache for completed blocks: a direct-mapped ring indexed by
/// `block % capacity`.
///
/// Block ids are dense and windowed, so the ring behaves like a FIFO
/// `HashMap` cache but costs one index compare per lookup instead of a
/// SipHash probe — the lookup sits on the per-contribution hot path
/// (gated behind [`RetirementFloor`], which rejects non-retired blocks on
/// a comparison). Both switch-program backends keep their completed-block
/// payloads here so a retransmitted contribution can be answered with a
/// replay instead of deadlocking the block (paper Section 4.1); the entry
/// type is generic because the dense program caches one encoded payload
/// per block while the sparse program caches a whole shard set.
#[derive(Debug)]
pub struct ReplayRing<P> {
    slots: Vec<Option<(u64, P)>>,
}

impl<P> ReplayRing<P> {
    /// Default slot count shared by every backend: far larger than any
    /// admitted window, so an entry can only evict once all senders have
    /// moved past it.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Ring with `capacity` direct-mapped slots. Entries evict when a
    /// block `capacity` ids later completes; senders stay well within
    /// that because their in-flight window is far smaller.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            slots: (0..capacity).map(|_| None).collect(),
        }
    }

    fn idx(&self, block: u64) -> usize {
        (block % self.slots.len() as u64) as usize
    }

    /// Cache `payload` for `block`, handing back any evicted (or
    /// replaced) payload so the caller can reclaim its buffers.
    pub fn put(&mut self, block: u64, payload: P) -> Option<P> {
        let i = self.idx(block);
        self.slots[i].replace((block, payload)).map(|(_, old)| old)
    }

    /// The cached payload for `block`, if still resident.
    pub fn get(&self, block: u64) -> Option<&P> {
        match &self.slots[self.idx(block)] {
            Some((b, payload)) if *b == block => Some(payload),
            _ => None,
        }
    }

    /// Mutable access to the cached payload for `block`, creating it with
    /// `make` if absent (evicting whatever held the slot; the evicted
    /// payload is dropped).
    pub fn get_or_insert_with(&mut self, block: u64, make: impl FnOnce() -> P) -> &mut P {
        let i = self.idx(block);
        let hit = matches!(&self.slots[i], Some((b, _)) if *b == block);
        if !hit {
            self.slots[i] = Some((block, make()));
        }
        &mut self.slots[i].as_mut().expect("just ensured").1
    }
}

/// Tracks retired (completed) block ids as a contiguous floor plus a
/// small sorted set of out-of-order completions.
///
/// Block ids are dense and windowed, so completions are nearly in order:
/// the common case is `retire(floor)` advancing the floor and
/// `is_retired` answering with a single comparison — replacing the
/// per-packet `HashSet` probe the PsPIN handlers used to pay for
/// duplicate/late-packet rejection. Out-of-order completions (bounded by
/// the sender window) wait in a sorted vector consulted by binary search
/// until the floor catches up.
///
/// Feed the returned floor to [`BlockSlab::set_floor`] so the slab
/// rejects retired ids on the same comparison.
#[derive(Debug, Default)]
pub struct RetirementFloor {
    floor: u64,
    /// Completed ids `>= floor`, sorted ascending.
    pending: Vec<u64>,
}

impl RetirementFloor {
    /// A fresh tracker: nothing retired, floor at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The contiguous retirement floor: every id below it is retired.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Completed ids still waiting for the floor to catch up.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether `id` has been retired.
    pub fn is_retired(&self, id: u64) -> bool {
        id < self.floor || (!self.pending.is_empty() && self.pending.binary_search(&id).is_ok())
    }

    /// Retire `id` and return the (possibly advanced) contiguous floor.
    /// Retiring an id twice, or below the floor, is a no-op.
    pub fn retire(&mut self, id: u64) -> u64 {
        if id < self.floor {
            return self.floor;
        }
        if id == self.floor {
            self.floor += 1;
            // Absorb any consecutive out-of-order completions.
            let caught_up = self
                .pending
                .iter()
                .take_while(|&&p| {
                    let hit = p == self.floor;
                    if hit {
                        self.floor += 1;
                    }
                    hit
                })
                .count();
            self.pending.drain(..caught_up);
        } else if let Err(at) = self.pending.binary_search(&id) {
            self.pending.insert(at, id);
        }
        self.floor
    }
}

/// Counters exposed by [`BlockSlab`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Lookups answered by the direct-mapped slot.
    pub direct: u64,
    /// Lookups that fell back to the overflow map (slot collision).
    pub collisions: u64,
    /// Accesses rejected because the block id was below the floor.
    pub stale_rejected: u64,
}

/// Open-block storage indexed by `block % slots` with an overflow map.
#[derive(Debug)]
pub struct BlockSlab<V> {
    slots: Vec<Option<(u64, V)>>,
    mask: u64,
    overflow: HashMap<u64, V>,
    floor: u64,
    len: usize,
    stats: SlabStats,
}

impl<V> BlockSlab<V> {
    /// Default slot count: covers the block window of every scenario in
    /// the perf matrix without collisions.
    pub const DEFAULT_SLOTS: usize = 1024;

    /// Slab with at least `min_slots` direct-mapped slots (rounded up to
    /// a power of two).
    pub fn new(min_slots: usize) -> Self {
        let slots = min_slots.max(2).next_power_of_two();
        Self {
            slots: (0..slots).map(|_| None).collect(),
            mask: slots as u64 - 1,
            overflow: HashMap::new(),
            floor: 0,
            len: 0,
            stats: SlabStats::default(),
        }
    }

    fn idx(&self, block: u64) -> usize {
        (block & self.mask) as usize
    }

    /// Open blocks currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no blocks are open.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lookup/insert accounting.
    pub fn stats(&self) -> SlabStats {
        self.stats
    }

    /// The retirement floor: ids below it are out of the window.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Raise the retirement floor; future accesses to ids below it are
    /// rejected (returns `None`). Open entries below the floor are
    /// dropped. The floor never moves backwards.
    pub fn set_floor(&mut self, floor: u64) {
        if floor <= self.floor {
            return;
        }
        self.floor = floor;
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|(b, _)| *b < floor) {
                *slot = None;
                self.len -= 1;
            }
        }
        let before = self.overflow.len();
        self.overflow.retain(|b, _| *b >= floor);
        self.len -= before - self.overflow.len();
    }

    /// The open entry for `block`, or `None` when it is not open (or is
    /// below the floor).
    pub fn get_mut(&mut self, block: u64) -> Option<&mut V> {
        if block < self.floor {
            self.stats.stale_rejected += 1;
            return None;
        }
        let i = self.idx(block);
        match &self.slots[i] {
            Some((b, _)) if *b == block => {
                self.stats.direct += 1;
                Some(&mut self.slots[i].as_mut().expect("just matched").1)
            }
            _ => match self.overflow.get_mut(&block) {
                Some(v) => {
                    self.stats.collisions += 1;
                    Some(v)
                }
                None => None,
            },
        }
    }

    /// The open entry for `block`, creating it with `make` if absent.
    /// Returns `None` (without calling `make`) when `block` is below the
    /// floor — the caller treats that as a late packet for a retired
    /// block.
    pub fn get_or_insert_with(&mut self, block: u64, make: impl FnOnce() -> V) -> Option<&mut V> {
        if block < self.floor {
            self.stats.stale_rejected += 1;
            return None;
        }
        let i = self.idx(block);
        let state = match &self.slots[i] {
            Some((b, _)) if *b == block => 0u8, // present in slot
            None => 1,                          // free slot
            Some(_) => 2,                       // collision
        };
        match state {
            0 => {
                self.stats.direct += 1;
                Some(&mut self.slots[i].as_mut().expect("matched").1)
            }
            1 => {
                // The slot is free, but the block may already live in the
                // overflow map (it collided while a different block held
                // the slot). Migrate it home instead of opening a
                // duplicate that would orphan its state.
                if let Some(v) = self.overflow.remove(&block) {
                    self.stats.collisions += 1;
                    self.slots[i] = Some((block, v));
                } else {
                    self.stats.direct += 1;
                    self.len += 1;
                    self.slots[i] = Some((block, make()));
                }
                Some(&mut self.slots[i].as_mut().expect("inserted").1)
            }
            _ => {
                self.stats.collisions += 1;
                let entry = self.overflow.entry(block);
                if matches!(entry, std::collections::hash_map::Entry::Vacant(_)) {
                    self.len += 1;
                }
                Some(entry.or_insert_with(make))
            }
        }
    }

    /// Close `block`, handing its state back (slot or overflow).
    pub fn remove(&mut self, block: u64) -> Option<V> {
        if block < self.floor {
            self.stats.stale_rejected += 1;
            return None;
        }
        let i = self.idx(block);
        if self.slots[i].as_ref().is_some_and(|(b, _)| *b == block) {
            self.len -= 1;
            return self.slots[i].take().map(|(_, v)| v);
        }
        let out = self.overflow.remove(&block);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Iterate the open `(block, state)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(b, v)| (*b, v)))
            .chain(self.overflow.iter().map(|(b, v)| (*b, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_returned_buffers() {
        let mut pool: BufferPool<i32> = BufferPool::new();
        let a = pool.get(16);
        assert_eq!(pool.stats().misses(), 1, "first get allocates");
        pool.put(a);
        let b = pool.get(16);
        assert_eq!(pool.stats().hits, 1, "second get reuses");
        assert!(b.capacity() >= 16 && b.is_empty());
        assert_eq!(pool.stats().hit_rate(), 0.5);
    }

    #[test]
    fn pool_steady_state_is_allocation_free() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        // Warm up with one buffer, then churn get/put 1000 times.
        let warm = pool.get(64);
        pool.put(warm);
        for _ in 0..1000 {
            let v = pool.get(64);
            pool.put(v);
        }
        assert_eq!(pool.stats().misses(), 1, "only the warm-up allocated");
    }

    #[test]
    fn pool_bounds_its_free_list() {
        let mut pool: BufferPool<u8> = BufferPool::with_max_free(2);
        for _ in 0..5 {
            pool.put(Vec::new());
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().puts, 2, "overflowing puts are dropped");
    }

    #[test]
    fn reclaim_recovers_unique_payloads_only() {
        let mut pool: BufferPool<u8> = BufferPool::new();
        let payload = bytes::Bytes::from(vec![1u8, 2, 3]);
        let shared = payload.clone();
        pool.reclaim(payload);
        assert_eq!(pool.idle(), 0, "shared payloads are not reclaimed");
        pool.reclaim(shared);
        assert_eq!(pool.idle(), 1, "unique payloads are");
    }

    #[test]
    fn replay_ring_is_direct_mapped_and_evicts_by_modulus() {
        let mut ring: ReplayRing<&'static str> = ReplayRing::new(4);
        assert_eq!(ring.put(1, "a"), None);
        assert_eq!(ring.get(1), Some(&"a"));
        assert_eq!(ring.get(5), None, "same slot, different block");
        // Block 5 maps to the same slot: evicts 1, handing it back.
        assert_eq!(ring.put(5, "b"), Some("a"));
        assert_eq!(ring.get(1), None);
        assert_eq!(ring.get(5), Some(&"b"));
        // Replacing the same block also hands back the old payload.
        assert_eq!(ring.put(5, "c"), Some("b"));
        *ring.get_or_insert_with(5, || "x") = "d";
        assert_eq!(ring.get(5), Some(&"d"));
        assert_eq!(*ring.get_or_insert_with(2, || "fresh"), "fresh");
    }

    #[test]
    fn slab_stores_and_removes_without_collisions() {
        let mut slab: BlockSlab<u32> = BlockSlab::new(8);
        for b in 0..8u64 {
            *slab.get_or_insert_with(b, || 0).unwrap() = b as u32;
        }
        assert_eq!(slab.len(), 8);
        assert_eq!(slab.stats().collisions, 0);
        for b in 0..8u64 {
            assert_eq!(slab.remove(b), Some(b as u32));
        }
        assert!(slab.is_empty());
    }

    #[test]
    fn slab_wraps_around_the_window() {
        // Dense windowed ids: open/close a sliding window of 4 over 100
        // ids through an 8-slot slab; every id reuses slots mod 8.
        let mut slab: BlockSlab<u64> = BlockSlab::new(8);
        for b in 0..100u64 {
            slab.get_or_insert_with(b, || b).unwrap();
            if b >= 4 {
                assert_eq!(slab.remove(b - 4), Some(b - 4));
            }
        }
        assert_eq!(slab.len(), 4);
        assert_eq!(slab.stats().collisions, 0, "windowed ids never collide");
    }

    #[test]
    fn slab_collisions_fall_back_to_overflow_correctly() {
        let mut slab: BlockSlab<&'static str> = BlockSlab::new(4);
        slab.get_or_insert_with(1, || "a").unwrap();
        slab.get_or_insert_with(5, || "b").unwrap(); // 5 % 4 == 1: collides
        assert_eq!(slab.len(), 2);
        assert!(slab.stats().collisions > 0);
        assert_eq!(*slab.get_mut(1).unwrap(), "a");
        assert_eq!(*slab.get_mut(5).unwrap(), "b");
        assert_eq!(slab.remove(5), Some("b"));
        assert_eq!(slab.remove(1), Some("a"));
    }

    #[test]
    fn slab_migrates_overflow_entries_home_when_their_slot_frees() {
        // X and Y collide; X owns the slot, Y lives in overflow. When X
        // closes, a later get_or_insert_with for Y must find Y's existing
        // state (migrated into the slot), not open a duplicate.
        let mut slab: BlockSlab<u32> = BlockSlab::new(4);
        slab.get_or_insert_with(1, || 10).unwrap(); // slot 1
        *slab.get_or_insert_with(5, || 0).unwrap() = 50; // 5 % 4 == 1: overflow
        assert_eq!(slab.remove(1), Some(10)); // slot 1 now free
        let y = slab.get_or_insert_with(5, || 999).unwrap();
        assert_eq!(*y, 50, "must migrate the live overflow entry, not make()");
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.remove(5), Some(50));
        assert!(slab.is_empty());
    }

    #[test]
    fn slab_rejects_ids_below_the_floor() {
        let mut slab: BlockSlab<u8> = BlockSlab::new(8);
        slab.get_or_insert_with(3, || 1).unwrap();
        slab.get_or_insert_with(9, || 2).unwrap();
        slab.set_floor(8);
        assert_eq!(slab.len(), 1, "entries below the floor are dropped");
        assert!(slab.get_or_insert_with(3, || 9).is_none());
        assert!(slab.get_mut(3).is_none());
        assert!(slab.remove(3).is_none());
        assert_eq!(slab.stats().stale_rejected, 3);
        assert_eq!(*slab.get_mut(9).unwrap(), 2);
        // The floor never moves backwards.
        slab.set_floor(2);
        assert_eq!(slab.floor(), 8);
    }

    #[test]
    fn retirement_floor_advances_contiguously() {
        let mut r = RetirementFloor::new();
        assert!(!r.is_retired(0));
        assert_eq!(r.retire(0), 1);
        assert_eq!(r.retire(1), 2);
        assert!(r.is_retired(0) && r.is_retired(1));
        assert!(!r.is_retired(2));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn retirement_floor_absorbs_out_of_order_completions() {
        let mut r = RetirementFloor::new();
        // Blocks complete 2, 3, 0, 1 (window reordering).
        assert_eq!(r.retire(2), 0);
        assert_eq!(r.retire(3), 0);
        assert_eq!(r.pending(), 2);
        assert!(r.is_retired(2) && r.is_retired(3));
        assert!(!r.is_retired(0) && !r.is_retired(1));
        assert_eq!(r.retire(0), 1);
        assert_eq!(r.retire(1), 4, "floor jumps over the pending run");
        assert_eq!(r.pending(), 0);
        for b in 0..4 {
            assert!(r.is_retired(b));
        }
        assert!(!r.is_retired(4));
    }

    #[test]
    fn retirement_floor_ignores_duplicates_and_below_floor() {
        let mut r = RetirementFloor::new();
        r.retire(0);
        assert_eq!(r.retire(0), 1, "re-retiring below the floor is a no-op");
        r.retire(5);
        r.retire(5);
        assert_eq!(r.pending(), 1, "duplicate pending id not double-counted");
        assert_eq!(r.floor(), 1);
    }

    #[test]
    fn retirement_floor_matches_slab_rejection() {
        // The floor handed to BlockSlab::set_floor makes the slab reject
        // exactly the contiguously retired prefix.
        let mut r = RetirementFloor::new();
        let mut slab: BlockSlab<u8> = BlockSlab::new(8);
        for b in [0u64, 1, 2] {
            slab.get_or_insert_with(b, || b as u8).unwrap();
        }
        for b in [0u64, 1] {
            slab.remove(b);
            slab.set_floor(r.retire(b));
        }
        assert!(slab.get_or_insert_with(0, || 9).is_none());
        assert!(slab.get_or_insert_with(1, || 9).is_none());
        assert_eq!(*slab.get_mut(2).unwrap(), 2);
    }

    #[test]
    fn slab_iter_covers_slots_and_overflow() {
        let mut slab: BlockSlab<u8> = BlockSlab::new(2);
        slab.get_or_insert_with(0, || 10).unwrap();
        slab.get_or_insert_with(2, || 20).unwrap(); // collides with 0
        let mut seen: Vec<(u64, u8)> = slab.iter().map(|(b, v)| (b, *v)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 10), (2, 20)]);
    }
}
