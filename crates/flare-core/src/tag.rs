//! Namespaced wake tags for flow-multiplexed host programs.
//!
//! The DES delivers host timers as an opaque `u64` tag. When a single
//! `HostProgram` multiplexes many flows (the traffic engine's per-tenant
//! mux), every layer that arms a timer must share one namespace or the
//! tags collide: the legacy scheme used a flat constant (`0xF1A8`) for
//! host retransmission while the engine packed `kind | cell << 8`, so an
//! inner host's retransmit wake decoded as an engine event for an
//! arbitrary cell index. [`FlowTag`] fixes the namespace: every wake tag
//! names the *flow* that owns it, a *kind* within that flow, and a *seq*
//! that disambiguates successive incarnations (DNN iterations) of the
//! flow so a stale timer from iteration `k` can never fire into
//! iteration `k+1`.
//!
//! Layout (bijective with `u64`):
//!
//! ```text
//! 63            32 31     24 23                  0
//! +---------------+---------+---------------------+
//! |   flow (u32)  | kind u8 |      seq (24 bit)   |
//! +---------------+---------+---------------------+
//! ```
//!
//! `flow` is the allreduce id for collective traffic, `kind` partitions
//! timer types within the flow (the host retransmit timer owns
//! [`KIND_RETRANSMIT`]; multiplexers allocate kinds from
//! [`KIND_ENGINE_BASE`] upward), and `seq` is bounded by [`MAX_SEQ`] with
//! a typed [`FlowTagOverflow`] error rather than silent truncation.

use std::fmt;

/// Wake-tag kind reserved for the host retransmission timer
/// (`DenseFlareHost` / `SparseFlareHost`).
pub const KIND_RETRANSMIT: u8 = 0x01;

/// First kind value available to outer multiplexers (traffic engines and
/// similar): kinds below this are reserved for inner host programs.
pub const KIND_ENGINE_BASE: u8 = 0x10;

/// Number of bits carried by [`FlowTag::seq`].
pub const SEQ_BITS: u32 = 24;

/// Largest representable [`FlowTag::seq`] value.
pub const MAX_SEQ: u32 = (1 << SEQ_BITS) - 1;

/// A namespaced wake tag: `(flow, kind, seq)` packed into the DES's
/// `u64` tag word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowTag {
    /// Owning flow — the allreduce id for collective programs.
    pub flow: u32,
    /// Timer type within the flow ([`KIND_RETRANSMIT`], engine kinds, …).
    pub kind: u8,
    /// Incarnation counter (e.g. the global iteration index of a traffic
    /// tenant); at most [`MAX_SEQ`].
    pub seq: u32,
}

/// Typed error: a [`FlowTag::seq`] exceeded the 24-bit field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTagOverflow {
    /// Flow whose tag could not be packed.
    pub flow: u32,
    /// The out-of-range sequence value.
    pub seq: u32,
}

impl fmt::Display for FlowTagOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wake-tag seq {} for flow {} exceeds the {SEQ_BITS}-bit field (max {MAX_SEQ})",
            self.seq, self.flow
        )
    }
}

impl std::error::Error for FlowTagOverflow {}

impl FlowTag {
    /// Construct a tag without packing it (packing validates `seq`).
    pub fn new(flow: u32, kind: u8, seq: u32) -> Self {
        Self { flow, kind, seq }
    }

    /// The retransmission-timer tag for `flow` at incarnation `seq`.
    pub fn retransmit(flow: u32, seq: u32) -> Self {
        Self::new(flow, KIND_RETRANSMIT, seq)
    }

    /// Pack into the DES tag word; fails with a typed error if `seq`
    /// does not fit its 24-bit field.
    pub fn pack(self) -> Result<u64, FlowTagOverflow> {
        if self.seq > MAX_SEQ {
            return Err(FlowTagOverflow {
                flow: self.flow,
                seq: self.seq,
            });
        }
        Ok(((self.flow as u64) << 32) | ((self.kind as u64) << SEQ_BITS) | self.seq as u64)
    }

    /// Decode a DES tag word. Total (every `u64` is some tag); packing
    /// then unpacking is the identity for in-range tags.
    pub fn unpack(raw: u64) -> Self {
        Self {
            flow: (raw >> 32) as u32,
            kind: ((raw >> SEQ_BITS) & 0xFF) as u8,
            seq: (raw & MAX_SEQ as u64) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for tag in [
            FlowTag::new(0, 0, 0),
            FlowTag::new(7, KIND_RETRANSMIT, 12),
            FlowTag::new(u32::MAX, 0xFF, MAX_SEQ),
            FlowTag::retransmit(42, 1_000_000),
        ] {
            let raw = tag.pack().expect("in range");
            assert_eq!(FlowTag::unpack(raw), tag);
        }
    }

    #[test]
    fn seq_overflow_is_a_typed_error() {
        let err = FlowTag::retransmit(9, MAX_SEQ + 1).pack().unwrap_err();
        assert_eq!(
            err,
            FlowTagOverflow {
                flow: 9,
                seq: MAX_SEQ + 1
            }
        );
        assert!(err.to_string().contains("24-bit"));
    }

    #[test]
    fn distinct_fields_never_collide() {
        // Same flow, different kind; same kind, different seq; etc.
        let a = FlowTag::new(3, KIND_RETRANSMIT, 5).pack().unwrap();
        let b = FlowTag::new(3, KIND_ENGINE_BASE, 5).pack().unwrap();
        let c = FlowTag::new(3, KIND_RETRANSMIT, 6).pack().unwrap();
        let d = FlowTag::new(4, KIND_RETRANSMIT, 5).pack().unwrap();
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn legacy_flat_tags_collided_with_shifted_cell_schemes() {
        // The pre-namespace bug class: the host layer used a flat
        // constant 0xF1A8 while the traffic engine decoded
        // `kind = tag & 0xFF, cell = tag >> 8`. The host's retransmit
        // wake therefore decoded as engine kind 0xA8 for cell 0xF1 —
        // or, for any engine kind ≤ 0xFF, an engine tag for cell 0xF1
        // was indistinguishable from a host constant. Under FlowTag the
        // host timer carries KIND_RETRANSMIT < KIND_ENGINE_BASE, so the
        // two layers can never produce the same word.
        const LEGACY_RETX: u64 = 0xF1A8;
        let legacy_kind = LEGACY_RETX & 0xFF;
        let legacy_cell = LEGACY_RETX >> 8;
        assert_eq!((legacy_kind, legacy_cell), (0xA8, 0xF1)); // misdecoded

        let host = FlowTag::retransmit(7, 0).pack().unwrap();
        let engine = FlowTag::new(7, KIND_ENGINE_BASE, 0).pack().unwrap();
        assert_ne!(host, engine);
        assert!(FlowTag::unpack(host).kind < KIND_ENGINE_BASE);
        assert!(FlowTag::unpack(engine).kind >= KIND_ENGINE_BASE);
    }
}
