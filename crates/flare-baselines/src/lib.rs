//! Baselines the paper compares Flare against.
//!
//! * [`ring`] — the bandwidth-optimal host-based dense allreduce
//!   (Rabenseifner/ring: scatter-reduce + allgather), both as a pure
//!   function and as a network-simulator host program ("Host-Based Dense"
//!   in Figure 15).
//! * [`recdouble`] — recursive-doubling allreduce (latency-optimal for
//!   small data; the skeleton SparCML builds on).
//! * [`sparcml`] — SparCML-style host-based *sparse* allreduce: recursive
//!   doubling over (index, value) streams with automatic switch-over to a
//!   dense representation when the union densifies ("Host-Based Sparse"
//!   in Figure 15).
//! * [`refmodels`] — SwitchML and SHARP reference models: the fixed
//!   bandwidth caps (1.6 / 3.2 Tbps), SwitchML's int32-only quantization
//!   and its recirculation-limited elements/s (flat across datatypes),
//!   used as the horizontal lines of Figure 11.

pub mod recdouble;
pub mod refmodels;
pub mod ring;
pub mod sparcml;

pub use recdouble::recursive_doubling_allreduce;
pub use refmodels::{SHARP_TBPS, SWITCHML_TBPS};
pub use ring::{ring_allreduce, RingHost};
pub use sparcml::{sparcml_allreduce, SparcmlHost};
