//! Rabenseifner (ring) allreduce — the host-based dense baseline.
//!
//! Two phases over a logical ring of `P` hosts (paper Section 1): a
//! scatter-reduce of `P−1` steps (each host ends up owning one fully
//! reduced chunk of `Z/P` elements) and an allgather of `P−1` steps
//! (the owned chunks circulate until everyone has everything). Each host
//! transmits `2(P−1)·Z/P ≈ 2Z` bytes — twice the in-network allreduce.
//!
//! The network-simulator implementation segments each chunk into MTU-sized
//! packets so transfers pipeline across hops; step `s+1` starts only after
//! step `s`'s incoming chunk fully arrived (the ring dependency). Segments
//! of one flow follow one ECMP path and links are FIFO, so a last-segment
//! flag suffices to detect chunk completion.

use bytes::Bytes;

use flare_core::dtype::{decode_slice, encode_slice, Element};
use flare_core::host::ResultSink;
use flare_core::op::ReduceOp;
use flare_net::{HostCtx, HostProgram, NetPacket, NodeId};

/// Pure-function ring allreduce over one vector per host; returns the
/// common result (identical on every host). Used as the functional
/// baseline and to validate the simulated version.
pub fn ring_allreduce<T: Element, O: ReduceOp<T>>(op: &O, inputs: &[Vec<T>]) -> Vec<T> {
    let p = inputs.len();
    assert!(p >= 1);
    let z = inputs[0].len();
    let bounds = chunk_bounds(z, p);
    // Scatter-reduce: after P−1 steps host r owns chunk (r+1) mod p.
    let mut state: Vec<Vec<T>> = inputs.to_vec();
    for s in 0..p.saturating_sub(1) {
        // Every host sends chunk (r - s) mod p to host (r + 1) mod p.
        let sent: Vec<Vec<T>> = (0..p)
            .map(|r| {
                let c = (r + p - s % p) % p;
                let (lo, hi) = bounds[c];
                state[r][lo..hi].to_vec()
            })
            .collect();
        for (r, st) in state.iter_mut().enumerate() {
            let from = (r + p - 1) % p;
            let c = (from + p - s % p) % p;
            let (lo, hi) = bounds[c];
            for (dst, src) in st[lo..hi].iter_mut().zip(&sent[from]) {
                *dst = op.combine(*dst, *src);
            }
        }
    }
    // Host r now owns chunk (r+1) mod p fully reduced; gather them all.
    let mut result = vec![op.identity(); z];
    for (r, st) in state.iter().enumerate() {
        let c = (r + 1) % p;
        let (lo, hi) = bounds[c];
        result[lo..hi].copy_from_slice(&st[lo..hi]);
    }
    result
}

/// Chunk boundaries: `z` elements into `p` near-equal chunks.
pub fn chunk_bounds(z: usize, p: usize) -> Vec<(usize, usize)> {
    let base = z / p;
    let extra = z % p;
    let mut bounds = Vec::with_capacity(p);
    let mut lo = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

const KIND_SEG: u8 = 10;
const KIND_LAST_SEG: u8 = 11;

/// Ring allreduce host program for the network simulator.
pub struct RingHost<T: Element, O> {
    rank: usize,
    peers: Vec<NodeId>,
    flow: u32,
    op: O,
    data: Vec<T>,
    bounds: Vec<(usize, usize)>,
    segment_elems: usize,
    /// Global step: 0..P−1 scatter, P−1..2(P−1) gather.
    step: usize,
    recv_elems_this_step: usize,
    sink: ResultSink<T>,
    /// Bytes sent by this host (payloads), for traffic cross-checks.
    pub sent_bytes: u64,
}

impl<T: Element, O: ReduceOp<T>> RingHost<T, O> {
    /// Create rank `rank` of a ring over `peers` (all hosts, rank order).
    pub fn new(
        rank: usize,
        peers: Vec<NodeId>,
        flow: u32,
        op: O,
        data: Vec<T>,
        segment_bytes: usize,
        sink: ResultSink<T>,
    ) -> Self {
        let p = peers.len();
        assert!(p >= 2, "ring needs at least two hosts");
        assert!(segment_bytes >= T::WIRE_BYTES);
        let bounds = chunk_bounds(data.len(), p);
        Self {
            rank,
            peers,
            flow,
            op,
            data,
            bounds,
            segment_elems: segment_bytes / T::WIRE_BYTES,
            step: 0,
            recv_elems_this_step: 0,
            sink,
            sent_bytes: 0,
        }
    }

    fn p(&self) -> usize {
        self.peers.len()
    }

    /// Chunk this host *sends* at `step`.
    fn send_chunk(&self, step: usize) -> usize {
        let p = self.p();
        if step < p - 1 {
            (self.rank + p - step % p) % p
        } else {
            let s = step - (p - 1);
            (self.rank + 1 + p - s % p) % p
        }
    }

    /// Chunk this host *receives* at `step` (what its predecessor sends).
    fn recv_chunk(&self, step: usize) -> usize {
        let p = self.p();
        let pred = (self.rank + p - 1) % p;
        if step < p - 1 {
            (pred + p - step % p) % p
        } else {
            let s = step - (p - 1);
            (pred + 1 + p - s % p) % p
        }
    }

    fn total_steps(&self) -> usize {
        2 * (self.p() - 1)
    }

    fn send_step(&mut self, ctx: &mut HostCtx<'_>) {
        let chunk = self.send_chunk(self.step);
        let (lo, hi) = self.bounds[chunk];
        let next = self.peers[(self.rank + 1) % self.p()];
        let me = ctx.node();
        let mut off = lo;
        while off < hi {
            let end = (off + self.segment_elems).min(hi);
            let body = encode_slice(&self.data[off..end]);
            let kind = if end == hi { KIND_LAST_SEG } else { KIND_SEG };
            self.sent_bytes += body.len() as u64;
            let pkt = NetPacket::new(
                me,
                next,
                self.flow,
                off as u64, // absolute element offset
                self.step as u16,
                kind,
                16, // modeled header
                Bytes::from(body),
            );
            ctx.send(pkt);
            off = end;
        }
    }

    fn finish(&mut self, ctx: &mut HostCtx<'_>) {
        *self.sink.lock().expect("sink lock") = Some(std::mem::take(&mut self.data));
        ctx.mark_done();
    }
}

impl<T: Element, O: ReduceOp<T>> HostProgram for RingHost<T, O> {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.send_step(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
        if pkt.flow != self.flow {
            return;
        }
        debug_assert_eq!(pkt.child as usize, self.step, "ring steps are in order");
        let vals: Vec<T> = decode_slice(&pkt.payload);
        let off = pkt.block as usize;
        let scatter = self.step < self.p() - 1;
        for (i, v) in vals.iter().enumerate() {
            let dst = &mut self.data[off + i];
            *dst = if scatter {
                self.op.combine(*dst, *v)
            } else {
                *v
            };
        }
        self.recv_elems_this_step += vals.len();
        let chunk = self.recv_chunk(self.step);
        let (lo, hi) = self.bounds[chunk];
        if self.recv_elems_this_step < hi - lo {
            return;
        }
        // Step complete: advance and send the next one.
        self.recv_elems_this_step = 0;
        self.step += 1;
        if self.step < self.total_steps() {
            self.send_step(ctx);
        } else {
            self.finish(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::op::{golden_reduce, Sum};

    fn inputs(p: usize, z: usize) -> Vec<Vec<i32>> {
        (0..p)
            .map(|r| (0..z).map(|i| (r * 1000 + i) as i32).collect())
            .collect()
    }

    #[test]
    fn functional_ring_matches_golden() {
        for p in [2usize, 3, 4, 7, 8] {
            for z in [p, 17, 64] {
                let ins = inputs(p, z);
                assert_eq!(
                    ring_allreduce(&Sum, &ins),
                    golden_reduce(&Sum, &ins),
                    "p={p} z={z}"
                );
            }
        }
    }

    #[test]
    fn functional_ring_single_host_is_identity() {
        let ins = inputs(1, 8);
        assert_eq!(ring_allreduce(&Sum, &ins), ins[0]);
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for (z, p) in [(10, 3), (64, 8), (7, 7), (5, 8)] {
            let b = chunk_bounds(z, p);
            assert_eq!(b.len(), p);
            assert_eq!(b[0].0, 0);
            assert_eq!(b[p - 1].1, z);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn chunk_schedule_ends_with_ownership() {
        // After P−1 scatter steps, rank r has fully reduced chunk (r+1)%P:
        // verify the send/recv chunk schedule is consistent (what r sends
        // at step s is what r+1 receives at step s).
        let sink = flare_core::host::result_sink();
        let h = RingHost::new(
            1,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            1,
            Sum,
            vec![0i32; 64],
            1024,
            sink,
        );
        for s in 0..h.total_steps() {
            let sent = h.send_chunk(s);
            // Receiver is rank 2; its recv_chunk must equal what rank 1
            // sends. Emulate rank 2's view:
            let sink2 = flare_core::host::result_sink();
            let h2 = RingHost::new(
                2,
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                1,
                Sum,
                vec![0i32; 64],
                1024,
                sink2,
            );
            assert_eq!(h2.recv_chunk(s), sent, "step {s}");
        }
    }
}
