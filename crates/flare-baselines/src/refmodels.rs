//! SwitchML and SHARP reference models (Figure 11's horizontal lines).
//!
//! * **SwitchML** (NSDI'21) runs on Tofino RMT switches: integer-only
//!   (no FPU), a fixed number of elements per packet regardless of element
//!   width (more elements would need recirculation, costing bandwidth),
//!   and a measured peak of **1.6 Tbps**.
//! * **SHARP** (Mellanox fixed-function) supports floating point; the best
//!   published single-switch number the paper uses is **3.2 Tbps**
//!   (32 ports at 100 Gbps).

use flare_core::dtype::Element;

/// SwitchML peak aggregation bandwidth (Tbps).
pub const SWITCHML_TBPS: f64 = 1.6;
/// SHARP peak aggregation bandwidth (Tbps).
pub const SHARP_TBPS: f64 = 3.2;
/// Elements per packet SwitchML processes without recirculation.
pub const SWITCHML_ELEMS_PER_PACKET: usize = 32;
/// SwitchML element slot width on the switch (int32), bytes.
pub const SWITCHML_SLOT_BYTES: usize = 4;

/// SwitchML aggregated elements per second for a given element type.
///
/// Every element occupies a full 32-bit slot on the switch, so the rate is
/// *flat across datatypes* (Fig. 11b: int8/int16 gain nothing) and zero
/// for floats (unsupported on RMT hardware).
pub fn switchml_elements_per_sec<T: Element>() -> f64 {
    if T::NAME == "f32" || T::NAME == "f16" {
        return 0.0;
    }
    SWITCHML_TBPS * 1e12 / 8.0 / SWITCHML_SLOT_BYTES as f64
}

/// SHARP aggregated elements per second (wire-limited; supports floats).
pub fn sharp_elements_per_sec<T: Element>() -> f64 {
    SHARP_TBPS * 1e12 / 8.0 / T::WIRE_BYTES as f64
}

/// Quantize f32 data into SwitchML's fixed-point int32 representation
/// with a shared `scale` (the host-side preprocessing SwitchML requires;
/// this is the flexibility cost of integer-only switches).
pub fn switchml_quantize(data: &[f32], scale: f32) -> Vec<i32> {
    assert!(scale > 0.0);
    data.iter()
        .map(|&x| {
            let q = (x * scale).round();
            q.clamp(i32::MIN as f32, i32::MAX as f32) as i32
        })
        .collect()
}

/// Dequantize after aggregation.
pub fn switchml_dequantize(data: &[i32], scale: f32) -> Vec<f32> {
    assert!(scale > 0.0);
    data.iter().map(|&x| x as f32 / scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::dtype::F16;

    #[test]
    fn switchml_rate_is_flat_across_integer_types() {
        let i32r = switchml_elements_per_sec::<i32>();
        assert_eq!(i32r, switchml_elements_per_sec::<i16>());
        assert_eq!(i32r, switchml_elements_per_sec::<i8>());
        assert!((i32r - 5e10).abs() < 1e6); // 1.6 Tbps / 32 bit
    }

    #[test]
    fn switchml_does_not_support_floats() {
        assert_eq!(switchml_elements_per_sec::<f32>(), 0.0);
        assert_eq!(switchml_elements_per_sec::<F16>(), 0.0);
    }

    #[test]
    fn sharp_rate_scales_with_element_width() {
        assert!((sharp_elements_per_sec::<f32>() - 1e11).abs() < 1e6);
        assert_eq!(
            sharp_elements_per_sec::<i16>(),
            2.0 * sharp_elements_per_sec::<i32>()
        );
    }

    #[test]
    fn quantization_roundtrips_within_resolution() {
        let data = vec![0.0f32, 1.0, -2.5, 0.125, 1000.0];
        let scale = 1024.0;
        let q = switchml_quantize(&data, scale);
        let back = switchml_dequantize(&q, scale);
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= 0.5 / scale + a.abs() * 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_aggregation_is_exact_in_integer_domain() {
        // The reason SwitchML can aggregate at all: integer addition is
        // associative, so any aggregation order matches.
        let a = switchml_quantize(&[0.5, -0.25], 256.0);
        let b = switchml_quantize(&[0.125, 1.0], 256.0);
        let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let back = switchml_dequantize(&sum, 256.0);
        assert_eq!(back, vec![0.625, 0.75]);
    }

    #[test]
    fn quantize_clamps_out_of_range() {
        let q = switchml_quantize(&[1e30, -1e30], 1000.0);
        assert_eq!(q, vec![i32::MAX, i32::MIN]);
    }
}
