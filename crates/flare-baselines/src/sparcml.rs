//! SparCML-style host-based sparse allreduce (Renggli et al., SC'19) —
//! the "Host-Based Sparse" baseline of Figure 15.
//!
//! Recursive doubling over sparse `(index, value)` streams: in round `r`
//! each rank exchanges its accumulated sparse set with partner
//! `rank XOR 2^r` and merges (union, combining duplicate indexes). The
//! stream grows with the union — the *densification* effect — and SparCML
//! switches to a dense representation when the sparse encoding stops
//! paying off (pairs are 8 bytes vs 4 for dense f32 slots).

use std::collections::HashMap;

use bytes::Bytes;

use flare_core::host::ResultSink;
use flare_core::op::ReduceOp;
use flare_net::{HostCtx, HostProgram, NetPacket, NodeId};

/// Pure-function SparCML allreduce over f32 pairs. Returns the dense
/// result (length `n`) shared by all ranks.
pub fn sparcml_allreduce<O: ReduceOp<f32>>(
    op: &O,
    n: usize,
    inputs: &[Vec<(u32, f32)>],
) -> Vec<f32> {
    let p = inputs.len();
    assert!(p.is_power_of_two(), "SparCML uses recursive doubling (2^k)");
    let mut state: Vec<HashMap<u32, f32>> = inputs
        .iter()
        .map(|pairs| pairs.iter().copied().collect())
        .collect();
    for r in 0..p.trailing_zeros() {
        let stride = 1usize << r;
        let prev = state.clone();
        for (rank, cur) in state.iter_mut().enumerate() {
            let partner = rank ^ stride;
            for (&i, &v) in &prev[partner] {
                cur.entry(i)
                    .and_modify(|acc| *acc = op.combine(*acc, v))
                    .or_insert(v);
            }
        }
    }
    let mut out = vec![0.0f32; n];
    for (&i, &v) in &state[0] {
        out[i as usize] = v;
    }
    out
}

const KIND_SPARSE_SEG: u8 = 20;
const KIND_SPARSE_LAST: u8 = 21;
const KIND_DENSE_SEG: u8 = 22;
const KIND_DENSE_LAST: u8 = 23;

fn encode_pairs(pairs: &[(u32, f32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(pairs.len() * 8);
    for &(i, v) in pairs {
        out.extend_from_slice(&i.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_pairs(b: &[u8]) -> Vec<(u32, f32)> {
    b.chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                f32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
        .collect()
}

/// SparCML host program for the network simulator.
pub struct SparcmlHost<O> {
    rank: usize,
    peers: Vec<NodeId>,
    flow: u32,
    op: O,
    n: usize,
    /// Accumulated sparse state (kept sorted only at the end).
    acc: HashMap<u32, f32>,
    round: usize,
    segment_bytes: usize,
    /// Received-but-not-yet-merged pairs of the current round.
    inbox: Vec<(u32, f32)>,
    inbox_dense: Vec<f32>,
    dense_mode_rx: bool,
    sink: ResultSink<f32>,
    /// Total payload bytes sent (for traffic analysis).
    pub sent_bytes: u64,
}

impl<O: ReduceOp<f32>> SparcmlHost<O> {
    /// Create rank `rank` with its sparsified input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        peers: Vec<NodeId>,
        flow: u32,
        op: O,
        n: usize,
        pairs: Vec<(u32, f32)>,
        segment_bytes: usize,
        sink: ResultSink<f32>,
    ) -> Self {
        assert!(peers.len().is_power_of_two() && peers.len() >= 2);
        assert!(segment_bytes >= 8);
        Self {
            rank,
            peers,
            flow,
            op,
            n,
            acc: pairs.into_iter().collect(),
            round: 0,
            segment_bytes,
            inbox: Vec::new(),
            inbox_dense: Vec::new(),
            dense_mode_rx: false,
            sink,
            sent_bytes: 0,
        }
    }

    fn rounds(&self) -> usize {
        self.peers.len().trailing_zeros() as usize
    }

    fn partner(&self) -> NodeId {
        self.peers[self.rank ^ (1 << self.round)]
    }

    /// Send the accumulated state to this round's partner, sparse or dense
    /// depending on which encoding is smaller (SparCML's switch-over).
    fn send_round(&mut self, ctx: &mut HostCtx<'_>) {
        let me = ctx.node();
        let dst = self.partner();
        let sparse_bytes = self.acc.len() * 8;
        let dense_bytes = self.n * 4;
        if sparse_bytes < dense_bytes {
            let mut pairs: Vec<(u32, f32)> = self.acc.iter().map(|(&i, &v)| (i, v)).collect();
            pairs.sort_unstable_by_key(|&(i, _)| i);
            let per_seg = self.segment_bytes / 8;
            let nsegs = pairs.len().div_ceil(per_seg).max(1);
            for (s, chunk) in pairs.chunks(per_seg.max(1)).enumerate() {
                let body = encode_pairs(chunk);
                let kind = if s + 1 == nsegs {
                    KIND_SPARSE_LAST
                } else {
                    KIND_SPARSE_SEG
                };
                self.sent_bytes += body.len() as u64;
                let pkt = NetPacket::new(
                    me,
                    dst,
                    self.flow,
                    s as u64,
                    self.round as u16,
                    kind,
                    16,
                    Bytes::from(body),
                );
                ctx.send(pkt);
            }
            if pairs.is_empty() {
                let pkt = NetPacket::new(
                    me,
                    dst,
                    self.flow,
                    0,
                    self.round as u16,
                    KIND_SPARSE_LAST,
                    16,
                    Bytes::new(),
                );
                ctx.send(pkt);
            }
        } else {
            // Dense switch-over: stream the full vector.
            let mut dense = vec![0.0f32; self.n];
            for (&i, &v) in &self.acc {
                dense[i as usize] = v;
            }
            let per_seg = self.segment_bytes / 4;
            let nsegs = self.n.div_ceil(per_seg);
            for s in 0..nsegs {
                let lo = s * per_seg;
                let hi = ((s + 1) * per_seg).min(self.n);
                let mut body = Vec::with_capacity((hi - lo) * 4);
                for v in &dense[lo..hi] {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                let kind = if s + 1 == nsegs {
                    KIND_DENSE_LAST
                } else {
                    KIND_DENSE_SEG
                };
                self.sent_bytes += body.len() as u64;
                let pkt = NetPacket::new(
                    me,
                    dst,
                    self.flow,
                    lo as u64,
                    self.round as u16,
                    kind,
                    16,
                    Bytes::from(body),
                );
                ctx.send(pkt);
            }
        }
    }

    fn merge_round(&mut self, ctx: &mut HostCtx<'_>) {
        if self.dense_mode_rx {
            let dense = std::mem::take(&mut self.inbox_dense);
            for (i, v) in dense.into_iter().enumerate() {
                if v != 0.0 {
                    let e = self.acc.entry(i as u32).or_insert(0.0);
                    *e = self.op.combine(*e, v);
                }
            }
        } else {
            for (i, v) in std::mem::take(&mut self.inbox) {
                let e = self.acc.entry(i).or_insert(0.0);
                *e = self.op.combine(*e, v);
            }
        }
        self.dense_mode_rx = false;
        self.round += 1;
        if self.round < self.rounds() {
            self.send_round(ctx);
        } else {
            let mut out = vec![0.0f32; self.n];
            for (&i, &v) in &self.acc {
                out[i as usize] = v;
            }
            *self.sink.lock().expect("sink lock") = Some(out);
            ctx.mark_done();
        }
    }
}

impl<O: ReduceOp<f32>> HostProgram for SparcmlHost<O> {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.send_round(ctx);
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: NetPacket) {
        if pkt.flow != self.flow {
            return;
        }
        debug_assert_eq!(pkt.child as usize, self.round, "rounds are lock-step");
        match pkt.kind {
            KIND_SPARSE_SEG | KIND_SPARSE_LAST => {
                self.inbox.extend(decode_pairs(&pkt.payload));
                if pkt.kind == KIND_SPARSE_LAST {
                    self.merge_round(ctx);
                }
            }
            KIND_DENSE_SEG | KIND_DENSE_LAST => {
                self.dense_mode_rx = true;
                if self.inbox_dense.is_empty() {
                    self.inbox_dense = vec![0.0; self.n];
                }
                let lo = pkt.block as usize;
                for (i, c) in pkt.payload.chunks_exact(4).enumerate() {
                    self.inbox_dense[lo + i] = f32::from_le_bytes(c.try_into().unwrap());
                }
                if pkt.kind == KIND_DENSE_LAST {
                    self.merge_round(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::op::Sum;
    use flare_workloads::{densify_f32, sparsify_random_k};

    #[test]
    fn functional_sparcml_matches_dense_reference() {
        let n = 4096;
        let p = 8;
        let inputs: Vec<Vec<(u32, f32)>> = (0..p)
            .map(|h| sparsify_random_k(42, h as u64, n, 0.02))
            .collect();
        let got = sparcml_allreduce(&Sum, n, &inputs);
        let mut want = vec![0.0f32; n];
        for pairs in &inputs {
            for (i, w) in densify_f32(pairs, n).into_iter().enumerate() {
                want[i] += w;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn pair_codec_roundtrips() {
        let pairs = vec![(0u32, 1.5f32), (1000, -2.0), (u32::MAX, 0.25)];
        assert_eq!(decode_pairs(&encode_pairs(&pairs)), pairs);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn functional_rejects_non_power_of_two() {
        sparcml_allreduce(&Sum, 8, &vec![vec![]; 3]);
    }
}
