//! Recursive-doubling allreduce.
//!
//! `log₂P` rounds; in round `r` each rank exchanges its full working
//! vector with partner `rank XOR 2^r` and combines. Latency-optimal for
//! small messages (the regime where fixed-function offloads like Aries
//! and Tofu operate) but transmits `Z·log₂P` bytes per host — the
//! bandwidth baseline SparCML's sparse variant improves on.

use crate::ring::chunk_bounds;
use flare_core::dtype::Element;
use flare_core::op::ReduceOp;

/// Pure-function recursive-doubling allreduce. `inputs.len()` must be a
/// power of two. Combination order is partner-rank order, identical on
/// every host — deterministic, though different from `golden_reduce`'s
/// host order for non-associative operators.
pub fn recursive_doubling_allreduce<T: Element, O: ReduceOp<T>>(
    op: &O,
    inputs: &[Vec<T>],
) -> Vec<Vec<T>> {
    let p = inputs.len();
    assert!(p.is_power_of_two(), "recursive doubling needs 2^k ranks");
    let mut state: Vec<Vec<T>> = inputs.to_vec();
    let rounds = p.trailing_zeros();
    for r in 0..rounds {
        let stride = 1usize << r;
        let prev = state.clone();
        for (rank, cur) in state.iter_mut().enumerate() {
            let partner = rank ^ stride;
            // Fixed operand order (lower rank left) keeps all ranks
            // bitwise identical even for non-associative ops.
            for (i, v) in cur.iter_mut().enumerate() {
                let (a, b) = if rank < partner {
                    (prev[rank][i], prev[partner][i])
                } else {
                    (prev[partner][i], prev[rank][i])
                };
                *v = op.combine(a, b);
            }
        }
    }
    state
}

/// Bytes each host transmits: `Z·log₂P` (vs `≈2Z` for ring).
pub fn recdouble_bytes_per_host(z_bytes: u64, p: usize) -> u64 {
    z_bytes * p.trailing_zeros() as u64
}

/// Ring-allreduce bytes each host transmits: `2(P−1)/P·Z`.
pub fn ring_bytes_per_host(z_bytes: u64, p: usize) -> u64 {
    (2 * (p as u64 - 1) * z_bytes) / p as u64
}

/// Sanity helper shared with the figure harness: the chunking both
/// algorithms use.
pub fn chunks(z: usize, p: usize) -> Vec<(usize, usize)> {
    chunk_bounds(z, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::op::{golden_reduce, Sum};

    fn inputs(p: usize, z: usize) -> Vec<Vec<i32>> {
        (0..p)
            .map(|r| (0..z).map(|i| (r * 7 + i) as i32).collect())
            .collect()
    }

    #[test]
    fn matches_golden_for_associative_ops() {
        for p in [1usize, 2, 4, 8, 16] {
            let ins = inputs(p, 33);
            let out = recursive_doubling_allreduce(&Sum, &ins);
            let want = golden_reduce(&Sum, &ins);
            for (r, o) in out.iter().enumerate() {
                assert_eq!(*o, want, "rank {r}, p={p}");
            }
        }
    }

    #[test]
    fn all_ranks_agree_for_non_associative_ops() {
        let op = flare_core::op::Custom::new("na", 0i32, false, |a: i32, b: i32| {
            a.wrapping_mul(3).wrapping_sub(b)
        });
        let ins = inputs(8, 5);
        let out = recursive_doubling_allreduce(&op, &ins);
        for o in &out[1..] {
            assert_eq!(*o, out[0], "deterministic across ranks");
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_non_power_of_two() {
        recursive_doubling_allreduce(&Sum, &inputs(6, 4));
    }

    #[test]
    fn traffic_formulas() {
        assert_eq!(recdouble_bytes_per_host(1024, 8), 3072);
        assert_eq!(ring_bytes_per_host(1024, 8), 1792); // 2·7/8·1024
                                                        // Ring beats recursive doubling in bytes for P ≥ 4.
        for p in [4usize, 8, 64] {
            assert!(ring_bytes_per_host(1 << 20, p) < recdouble_bytes_per_host(1 << 20, p));
        }
    }
}
