//! Switch and workload parameters with the paper's defaults (Section 3).

use crate::units::KIB;

/// Architectural and workload parameters of the modeled PsPIN switch.
///
/// Defaults reproduce the paper's configuration: a 64-port switch whose
/// processing unit fits ~64 PULP clusters of 8 RI5CY HPUs in the 180 mm²
/// area budget, clocked at 1 GHz, receiving 1 KiB payloads of 256 f32
/// elements, with an aggregation cost of 4 cycles per f32 element (measured
/// by the authors on the PsPIN cycle-accurate simulator) and a 64-cycle DMA
/// packet copy.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchParams {
    /// Number of PsPIN clusters in the processing unit.
    pub clusters: usize,
    /// HPU cores per cluster (`C` in the paper).
    pub cores_per_cluster: usize,
    /// Packets received per reduction block = children in the reduction
    /// tree (`P`). A fully-populated 64-port switch has P = 64.
    pub ports: usize,
    /// Packet payload size in bytes (`N` elements × element size).
    pub packet_bytes: usize,
    /// Size of one element in bytes (f32 = 4).
    pub elem_bytes: usize,
    /// Aggregation cost in cycles per element (f32 = 4; Section 6 preamble).
    pub cycles_per_elem: f64,
    /// DMA engine cost to copy one packet into a buffer (cycles).
    pub dma_copy_cycles: f64,
    /// Core clock in GHz (1 cycle == 1 ns at the default 1 GHz).
    pub clock_ghz: f64,
    /// L1 scratchpad per cluster in bytes (working memory).
    pub l1_bytes_per_cluster: usize,
    /// L2 packet memory in bytes (input buffers).
    pub l2_packet_bytes: usize,
}

impl Default for SwitchParams {
    fn default() -> Self {
        Self::paper()
    }
}

impl SwitchParams {
    /// The paper's full-switch configuration (Section 3 area budget).
    pub fn paper() -> Self {
        Self {
            clusters: 64,
            cores_per_cluster: 8,
            ports: 64,
            packet_bytes: KIB as usize,
            elem_bytes: 4,
            cycles_per_elem: 4.0,
            dma_copy_cycles: 64.0,
            clock_ghz: 1.0,
            l1_bytes_per_cluster: MIB_USIZE,
            l2_packet_bytes: 4 * MIB_USIZE,
        }
    }

    /// The configuration actually simulated in the paper's PsPIN RTL runs
    /// (4 clusters), whose results are scaled linearly to `paper()`.
    pub fn rtl_sim() -> Self {
        Self {
            clusters: 4,
            ..Self::paper()
        }
    }

    /// The illustrative switch of Figure 5: one cluster of `K = 4` cores,
    /// `P = 4` ports, one 4-byte element per packet at 4 cycles/element
    /// (`τ = 4`), line-rate interarrival `δ = 1`. Small enough to follow
    /// packet-by-packet, it is the shared fixture for every
    /// model-vs-simulator cross-validation in the workspace (the Section 5
    /// scheduling scenarios, the PsPIN engine differential tests, and the
    /// network simulator's HPU compute model).
    pub fn figure5() -> Self {
        Self {
            clusters: 1,
            cores_per_cluster: 4,
            ports: 4,
            packet_bytes: 4,
            elem_bytes: 4,
            cycles_per_elem: 4.0,
            dma_copy_cycles: 0.0,
            clock_ghz: 1.0,
            l1_bytes_per_cluster: 1024,
            l2_packet_bytes: 1 << 20,
        }
    }

    /// Total number of HPU cores, `K = clusters × C`.
    pub fn cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// Elements per packet, `N`.
    pub fn elems_per_packet(&self) -> usize {
        self.packet_bytes / self.elem_bytes
    }

    /// `L`: cycles to aggregate one full packet inside the critical section.
    ///
    /// For the default parameters this is 256 × 4 = 1024 cycles, the paper's
    /// "1 ns per byte circa".
    pub fn l_cycles(&self) -> f64 {
        self.elems_per_packet() as f64 * self.cycles_per_elem
    }

    /// Line-rate packet interarrival `δ` in cycles: the paper sizes the
    /// system so the switch-wide service rate `K/τ_min` equals the arrival
    /// rate `1/δ`, i.e. `δ = L / K`.
    pub fn line_rate_delta(&self) -> f64 {
        self.l_cycles() / self.cores() as f64
    }

    /// Number of reduction blocks for a `data_bytes`-sized allreduce,
    /// `Z / N` (at least 1).
    pub fn blocks_for(&self, data_bytes: u64) -> u64 {
        (data_bytes / self.packet_bytes as u64).max(1)
    }

    /// Maximum intra-block interarrival achievable by staggered sending for
    /// a given data size: `δc ∈ [δ, δ·Z/N]` (Section 5).
    pub fn max_staggered_delta_c(&self, data_bytes: u64) -> f64 {
        self.line_rate_delta() * self.blocks_for(data_bytes) as f64
    }

    /// The intra-block interarrival `δc` a well-tuned host stack induces:
    /// staggered sending raises `δc` only as far as useful, i.e. up to the
    /// target (typically `L`), bounded by the achievable maximum.
    pub fn staggered_delta_c(&self, data_bytes: u64, target: f64) -> f64 {
        self.max_staggered_delta_c(data_bytes)
            .min(target)
            .max(self.line_rate_delta())
    }
}

const MIB_USIZE: usize = 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section3() {
        let p = SwitchParams::paper();
        assert_eq!(p.cores(), 512);
        assert_eq!(p.elems_per_packet(), 256);
        assert_eq!(p.l_cycles(), 1024.0);
        assert_eq!(p.line_rate_delta(), 2.0);
        assert_eq!(p.l1_bytes_per_cluster, 1024 * 1024);
        assert_eq!(p.l2_packet_bytes, 4 * 1024 * 1024);
    }

    #[test]
    fn rtl_sim_is_four_clusters() {
        let p = SwitchParams::rtl_sim();
        assert_eq!(p.clusters, 4);
        assert_eq!(p.cores(), 32);
    }

    #[test]
    fn figure5_switch_is_the_k4_tau4_delta1_toy() {
        let p = SwitchParams::figure5();
        assert_eq!(p.cores(), 4);
        assert_eq!(p.elems_per_packet(), 1);
        assert_eq!(p.l_cycles(), 4.0);
        assert_eq!(p.line_rate_delta(), 1.0);
        assert!(p.l_cycles() / p.cores() as f64 == p.line_rate_delta());
    }

    #[test]
    fn staggering_bounds_hold() {
        let p = SwitchParams::paper();
        // 512 KiB of data = 512 blocks: δc can reach δ·512 = 1024 = L,
        // the paper's "only guaranteed if larger than 512 KiB" threshold.
        assert_eq!(p.max_staggered_delta_c(512 * KIB), 1024.0);
        assert_eq!(p.staggered_delta_c(512 * KIB, p.l_cycles()), 1024.0);
        // Small data cannot stagger far.
        assert_eq!(p.staggered_delta_c(8 * KIB, p.l_cycles()), 16.0);
        // δc never below δ.
        assert!(p.staggered_delta_c(512, 0.0) >= p.line_rate_delta());
    }

    #[test]
    fn blocks_for_rounds_down_with_min_one() {
        let p = SwitchParams::paper();
        assert_eq!(p.blocks_for(512), 1);
        assert_eq!(p.blocks_for(4096), 4);
    }
}
