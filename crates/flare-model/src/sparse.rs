//! Sparse allreduce cost model (paper Section 7).
//!
//! Sparse packets carry `(index, value)` pairs (8 bytes per element at f32),
//! so a 1 KiB payload holds 128 elements. Two storage designs exist for the
//! partially-aggregated data:
//!
//! * **Hash storage** — a direct-mapped hash table; on a collision the
//!   element goes to a *spill buffer* which, when full, is forwarded
//!   unaggregated (the paper's "extra traffic"). Cost per element is
//!   constant (hash + probe + combine), independent of density.
//! * **Array storage** — a dense array spanning the whole block; stores are
//!   cheap but completion requires scanning the entire span to extract
//!   non-zeros, so the flush cost grows as `1/density`.
//!
//! Constants below are calibration parameters of this reproduction (the
//! paper derives them from its RTL simulator; we pick values that reproduce
//! the published bandwidth relationships — sparse < dense, array > hash,
//! hash flat vs density — and record them in EXPERIMENTS.md).

use crate::params::SwitchParams;
use crate::scheduling;
use crate::units::pkt_per_cycle_to_tbps;

/// Cycles per element for hash-table insert (hash, probe, compare, combine).
pub const HASH_INSERT_CYCLES: f64 = 24.0;
/// Cycles to push one colliding element into the spill buffer.
pub const SPILL_PUSH_CYCLES: f64 = 6.0;
/// Cycles per element for array store (index decode, bounds, read-add-write).
pub const ARRAY_STORE_CYCLES: f64 = 14.0;
/// Cycles per array slot scanned during the completion flush.
pub const ARRAY_FLUSH_SCAN_CYCLES: f64 = 1.0;
/// Cycles to emit one non-zero element into an output packet.
pub const EMIT_CYCLES: f64 = 4.0;
/// Wire bytes per sparse element: u32 index + f32 value.
pub const SPARSE_ELEM_BYTES: usize = 8;

/// Storage backend for partially-aggregated sparse data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SparseStorage {
    /// Direct-mapped hash table with a spill buffer.
    Hash,
    /// Dense array spanning the block, flushed on completion.
    Array,
}

impl SparseStorage {
    /// Short label used in tables and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            SparseStorage::Hash => "hash",
            SparseStorage::Array => "array",
        }
    }
}

/// Evaluated sparse model for one `(storage, density, data size)` point.
#[derive(Debug, Clone)]
pub struct SparseModel {
    /// Storage backend.
    pub storage: SparseStorage,
    /// Fraction of non-zero elements in each block (0, 1].
    pub density: f64,
    /// Aggregation bandwidth in Tbps (of sparsified wire data).
    pub bandwidth_tbps: f64,
    /// Service time per packet, cycles.
    pub tau: f64,
    /// Working memory per block in bytes.
    pub block_memory_bytes: f64,
    /// Expected extra network traffic from spilling, as a fraction of the
    /// sparsified data (0 for array storage).
    pub extra_traffic_frac: f64,
}

/// Sparse elements per packet: payload bytes / 8.
pub fn elems_per_packet(params: &SwitchParams) -> usize {
    params.packet_bytes / SPARSE_ELEM_BYTES
}

/// Block span in element indexes: chosen so a block holds one packet's worth
/// of non-zeros per host on average (Section 7: "set the span of the block"
/// so each block fits a packet).
pub fn block_span(params: &SwitchParams, density: f64) -> usize {
    debug_assert!(density > 0.0 && density <= 1.0);
    (elems_per_packet(params) as f64 / density).ceil() as usize
}

/// Expected fraction of inserts that collide in a direct-mapped table of
/// `slots` buckets after `n` uniform random inserts:
/// `1 − slots·(1 − (1−1/slots)^n) / n` (balls-into-bins occupancy).
pub fn collision_fraction(n: f64, slots: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let occupied = slots * (1.0 - (1.0 - 1.0 / slots).powf(n));
    (1.0 - occupied / n).clamp(0.0, 1.0)
}

/// Service time `τ` (cycles per packet) for sparse aggregation.
///
/// Contention behaves as in the dense case (the paper reuses the Section 6
/// designs), but per-element work is higher. We model the contention-free
/// regime the selected algorithm achieves at its operating size; the figure
/// binaries sweep storage × density, matching Figures 13/14.
pub fn tau_sparse(params: &SwitchParams, storage: SparseStorage, density: f64) -> f64 {
    let n = elems_per_packet(params) as f64;
    match storage {
        SparseStorage::Hash => {
            let slots = n; // table sized for one packet's worth of non-zeros
            let coll = collision_fraction(n, slots);
            let insert = n * (1.0 - coll) * HASH_INSERT_CYCLES;
            let spill = n * coll * (HASH_INSERT_CYCLES + SPILL_PUSH_CYCLES);
            // Emitting the table at completion, amortized over P packets.
            let flush = n * EMIT_CYCLES / params.ports as f64;
            insert + spill + flush + params.dma_copy_cycles
        }
        SparseStorage::Array => {
            let span = block_span(params, density) as f64;
            let store = n * ARRAY_STORE_CYCLES;
            // Completion flush scans the whole span and emits the survivors;
            // amortized over the P packets that built the block.
            let flush = (span * ARRAY_FLUSH_SCAN_CYCLES + span * density * EMIT_CYCLES)
                / params.ports as f64;
            store + flush + params.dma_copy_cycles
        }
    }
}

/// Working memory per block in bytes.
///
/// Hash: one slot per expected non-zero (index + value) plus the spill
/// buffer; array: the full span of values (indexes implicit), the memory
/// blow-up that makes 1 %-density array storage infeasible in the paper.
pub fn block_memory_bytes(params: &SwitchParams, storage: SparseStorage, density: f64) -> f64 {
    let n = elems_per_packet(params) as f64;
    match storage {
        SparseStorage::Hash => {
            let table = n * SPARSE_ELEM_BYTES as f64;
            let spill = 0.25 * n * SPARSE_ELEM_BYTES as f64;
            table + spill
        }
        SparseStorage::Array => block_span(params, density) as f64 * params.elem_bytes as f64,
    }
}

/// Expected extra traffic fraction caused by spilling (hash storage only).
///
/// A spilled element is forwarded without being aggregated, so downstream
/// nodes receive it *in addition to* the aggregated stream. The spill rate
/// is governed by how often different indexes from the `P` children land on
/// the same table slot, which grows with the expected per-index multiplicity
/// `x = P·density` (denser data overlaps more and fills slots earlier).
///
/// This is a calibrated closed form — `x² / (x² + 40)`, saturating in the
/// dense limit — chosen to reproduce the paper's Figure 14 (right): spilling
/// roughly *doubles* traffic at 20 % density, adds ~50 % at 10 %, and is
/// negligible at 1 %. The event-level simulator measures the real spill
/// traffic from an actual direct-mapped table; this function is the model
/// crate's smooth stand-in.
pub fn extra_traffic_frac(params: &SwitchParams, storage: SparseStorage, density: f64) -> f64 {
    match storage {
        SparseStorage::Array => 0.0,
        SparseStorage::Hash => {
            let x = params.ports as f64 * density;
            x * x / (x * x + 40.0)
        }
    }
}

/// Evaluate the sparse model at one `(storage, density, size)` point, on the
/// contention-free operating point of the selected dense algorithm.
pub fn evaluate(
    params: &SwitchParams,
    storage: SparseStorage,
    density: f64,
    data_bytes: u64,
) -> SparseModel {
    let tau = tau_sparse(params, storage, density);
    let delta_c = params.staggered_delta_c(data_bytes, tau);
    let op = scheduling::evaluate(params, params.cores_per_cluster, delta_c, tau);
    SparseModel {
        storage,
        density,
        bandwidth_tbps: pkt_per_cycle_to_tbps(
            op.bandwidth_pkt_cycle,
            params.packet_bytes,
            params.clock_ghz,
        ),
        tau,
        block_memory_bytes: block_memory_bytes(params, storage, density),
        extra_traffic_frac: extra_traffic_frac(params, storage, density),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{self, AggKind};
    use crate::units::KIB;

    fn p() -> SwitchParams {
        SwitchParams::paper()
    }

    #[test]
    fn sparse_packets_hold_128_elements() {
        assert_eq!(elems_per_packet(&p()), 128);
    }

    #[test]
    fn block_span_scales_inversely_with_density() {
        let params = p();
        assert_eq!(block_span(&params, 0.5), 256);
        assert_eq!(block_span(&params, 0.1), 1280);
        assert_eq!(block_span(&params, 0.01), 12800);
    }

    #[test]
    fn collision_fraction_limits() {
        // Few balls, many bins: almost no collisions.
        assert!(collision_fraction(1.0, 1e6) < 1e-5);
        // n == slots: 1 − (1 − 1/e) ≈ 0.368 collisions.
        let c = collision_fraction(1000.0, 1000.0);
        assert!((c - 0.368).abs() < 0.01, "{c}");
        // Saturated table: almost everything collides.
        assert!(collision_fraction(1e6, 10.0) > 0.99);
    }

    #[test]
    fn sparse_bandwidth_is_below_dense() {
        // Fig. 13 headline: sparse allreduce is slower than dense due to the
        // heavier per-element handler work.
        let params = p();
        let dense = dense::evaluate(&params, AggKind::Tree, 8, 512 * KIB);
        for storage in [SparseStorage::Hash, SparseStorage::Array] {
            let s = evaluate(&params, storage, 0.1, 512 * KIB);
            assert!(
                s.bandwidth_tbps < dense.bandwidth_tbps,
                "{storage:?}: {} !< {}",
                s.bandwidth_tbps,
                dense.bandwidth_tbps
            );
        }
    }

    #[test]
    fn array_is_faster_than_hash_at_moderate_density() {
        // Fig. 14: array storage achieves higher bandwidth than hash.
        let params = p();
        for density in [0.2, 0.1] {
            let h = evaluate(&params, SparseStorage::Hash, density, 512 * KIB);
            let a = evaluate(&params, SparseStorage::Array, density, 512 * KIB);
            assert!(a.bandwidth_tbps > h.bandwidth_tbps, "density {density}");
        }
    }

    #[test]
    fn hash_bandwidth_is_density_independent() {
        // Fig. 14: "Hash table storage is characterized by a constant
        // bandwidth and memory occupancy independently from the density."
        let params = p();
        let b20 = evaluate(&params, SparseStorage::Hash, 0.2, 512 * KIB).bandwidth_tbps;
        let b01 = evaluate(&params, SparseStorage::Hash, 0.01, 512 * KIB).bandwidth_tbps;
        assert!((b20 - b01).abs() < 1e-9);
    }

    #[test]
    fn array_memory_explodes_at_low_density() {
        // The paper cannot run 1 % density with array storage: a 600 KiB
        // array per block. Our span model: 128/0.01 = 12800 elems ⇒ 50 KiB
        // per block of values (the paper's block also spans P hosts' data).
        let params = p();
        let m1 = block_memory_bytes(&params, SparseStorage::Array, 0.01);
        let m20 = block_memory_bytes(&params, SparseStorage::Array, 0.2);
        assert!(m1 > 15.0 * m20);
        let mh = block_memory_bytes(&params, SparseStorage::Hash, 0.01);
        assert!(mh < m1);
    }

    #[test]
    fn array_never_generates_extra_traffic() {
        let params = p();
        for density in [0.2, 0.1, 0.01] {
            assert_eq!(
                extra_traffic_frac(&params, SparseStorage::Array, density),
                0.0
            );
        }
    }

    #[test]
    fn hash_extra_traffic_grows_with_density() {
        // Fig. 14 right: ~100 % extra traffic at 20 % density, small at 1 %.
        let params = p();
        let e20 = extra_traffic_frac(&params, SparseStorage::Hash, 0.2);
        let e10 = extra_traffic_frac(&params, SparseStorage::Hash, 0.1);
        let e01 = extra_traffic_frac(&params, SparseStorage::Hash, 0.01);
        assert!(e20 > e10 && e10 > e01, "{e20} {e10} {e01}");
        assert!(e20 > 0.5, "expect roughly doubling at 20%: {e20}");
        assert!(e01 < 0.2, "{e01}");
    }

    #[test]
    fn storage_labels() {
        assert_eq!(SparseStorage::Hash.label(), "hash");
        assert_eq!(SparseStorage::Array.label(), "array");
    }
}
