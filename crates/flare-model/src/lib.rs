//! Closed-form analytical models from the Flare paper (Sections 4–6).
//!
//! Every public function here corresponds to an equation or a modelling
//! statement in the paper and is documented with its source. The model crate
//! is deliberately dependency-free and purely numeric: the event-level
//! simulators (`flare-pspin`, `flare-net`) validate these formulas, and the
//! figure binaries in `flare-bench` evaluate them to regenerate the paper's
//! *modeled* plots (Figures 5, 7, 10 and 13). The *simulated* plots
//! (Figures 11, 14, 15) come from the simulators instead.
//!
//! Notation follows the paper's Table 2:
//!
//! | Symbol | Meaning |
//! |--------|---------|
//! | `K`    | number of cores (HPUs) in the switch |
//! | `C`    | cores per cluster |
//! | `S`    | cores in each scheduling subset |
//! | `P`    | packets per reduction block (= children in the tree) |
//! | `δ`    | average packet interarrival time at the switch |
//! | `δc`   | interarrival of packets belonging to the same block |
//! | `δk`   | interarrival of packets at one core during a burst |
//! | `τ`    | average service time of a core |
//! | `L`    | cycles to aggregate one packet once inside the critical section |
//! | `M`    | buffers used per block |
//! | `Q`    | maximum per-core queue length |
//! | `𝒬`    | maximum packets resident in the switch (Eq. 1) |
//! | `ℒ`    | latency to fully reduce a block |
//! | `ℛ`    | working-memory buffers needed per allreduce (Little's law) |

pub mod dense;
pub mod params;
pub mod policy;
pub mod scheduling;
pub mod sparse;
pub mod units;

pub use dense::{AggKind, DenseModel};
pub use params::SwitchParams;
pub use policy::select_algorithm;
pub use sparse::{SparseModel, SparseStorage};
