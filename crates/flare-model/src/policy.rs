//! Algorithm selection policy (paper Section 6.4).
//!
//! > "To optimize both compute and memory resources, Flare uses single
//! > buffer aggregation if the size of the data to be reduced is larger
//! > than 512KiB, multi buffers with 4 buffers if larger than 256KiB, with
//! > 2 buffers if larger than 128KiB, and tree aggregation otherwise. When
//! > reproducibility of floating-point summation is required, Flare always
//! > uses tree aggregation."

use crate::dense::AggKind;
use crate::units::KIB;

/// Select the dense aggregation algorithm for a reduction of `data_bytes`,
/// verbatim from the paper's policy.
///
/// Note: the model (Fig. 10) shows multi(4) becoming contention-free at
/// *smaller* sizes than multi(2); the paper's stated thresholds nonetheless
/// map the larger size range to the larger buffer count, and we follow the
/// text exactly.
pub fn select_algorithm(data_bytes: u64, reproducible: bool) -> AggKind {
    if reproducible {
        return AggKind::Tree;
    }
    if data_bytes > 512 * KIB {
        AggKind::SingleBuffer
    } else if data_bytes > 256 * KIB {
        AggKind::MultiBuffer(4)
    } else if data_bytes > 128 * KIB {
        AggKind::MultiBuffer(2)
    } else {
        AggKind::Tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_paper_text() {
        assert_eq!(select_algorithm(1024 * KIB, false), AggKind::SingleBuffer);
        assert_eq!(
            select_algorithm(512 * KIB + 1, false),
            AggKind::SingleBuffer
        );
        assert_eq!(select_algorithm(512 * KIB, false), AggKind::MultiBuffer(4));
        assert_eq!(
            select_algorithm(256 * KIB + 1, false),
            AggKind::MultiBuffer(4)
        );
        assert_eq!(select_algorithm(256 * KIB, false), AggKind::MultiBuffer(2));
        assert_eq!(
            select_algorithm(128 * KIB + 1, false),
            AggKind::MultiBuffer(2)
        );
        assert_eq!(select_algorithm(128 * KIB, false), AggKind::Tree);
        assert_eq!(select_algorithm(1, false), AggKind::Tree);
    }

    #[test]
    fn reproducibility_forces_tree() {
        for size in [1, 128 * KIB, 256 * KIB, 512 * KIB, 10_240 * KIB] {
            assert_eq!(select_algorithm(size, true), AggKind::Tree);
        }
    }
}
