//! Packet scheduling and input-buffer occupancy model (paper Section 5).
//!
//! Hierarchical FCFS assigns all packets of a block to a subset of `S` cores
//! on one cluster (for local-only L1 accesses), which turns the steady
//! per-core arrival stream into bursts. These functions quantify the queue
//! build-up those bursts cause, culminating in Eq. 1 for the maximum number
//! of packets resident in the switch.

use crate::params::SwitchParams;

/// `δk = min(S·δc, K·δ)`: interarrival of burst packets at a single core.
///
/// Packets of one block arrive to an `S`-core subset every `δc`, hence to
/// each core every `S·δc`; in the long run a core can never receive packets
/// faster than the fair share `K·δ` (Section 5).
pub fn delta_k(s: usize, delta_c: f64, k: usize, delta: f64) -> f64 {
    (s as f64 * delta_c).min(k as f64 * delta)
}

/// `Q = P/S · (1 − δk/τ)`: maximum queue length in front of one core.
///
/// A burst holds up to `P/S` packets arriving every `δk`; during the burst
/// the core drains one packet every `τ`, absorbing a `δk/τ` fraction.
/// Clamped at 0 for the no-queueing regime `δk ≥ τ`.
pub fn queue_len(p: usize, s: usize, delta_k: f64, tau: f64) -> f64 {
    debug_assert!(tau > 0.0);
    (p as f64 / s as f64 * (1.0 - delta_k / tau)).max(0.0)
}

/// Eq. 1: `𝒬 = (Q + 1)·K`, the maximum number of packets resident in the
/// switch (queued plus in service on each core).
pub fn max_packets_in_switch(q: f64, k: usize) -> f64 {
    (q + 1.0) * k as f64
}

/// `ℒ = (P−1)·δc + (Q+1)·τ`: worst-case latency to fully reduce a block —
/// waiting for all its packets plus queueing and serving the last one
/// (Section 5, end).
pub fn block_latency(p: usize, delta_c: f64, q: f64, tau: f64) -> f64 {
    (p as f64 - 1.0) * delta_c + (q + 1.0) * tau
}

/// Little's-law working-memory requirement (Section 4.3):
/// `ℛ = M · (ℬ/P) · ℒ` buffers, where `ℬ` is the switch bandwidth in
/// packets/cycle, so `ℬ/P` is the block completion rate.
pub fn working_buffers(m: f64, bandwidth_pkt_cycle: f64, p: usize, latency: f64) -> f64 {
    m * bandwidth_pkt_cycle / p as f64 * latency
}

/// `ℬ = min(K/τ, 1/δ)` in packets per cycle (Section 4.1).
pub fn switch_bandwidth(k: usize, tau: f64, delta: f64) -> f64 {
    (k as f64 / tau).min(1.0 / delta)
}

/// A fully-evaluated scheduling operating point, bundling the quantities the
/// paper's figures report for one `(S, δc, τ)` choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Cores per scheduling subset.
    pub s: usize,
    /// Intra-block interarrival (cycles).
    pub delta_c: f64,
    /// Core service time (cycles).
    pub tau: f64,
    /// Per-core burst interarrival δk (cycles).
    pub delta_k: f64,
    /// Max queue length per core.
    pub q: f64,
    /// Max packets resident in the switch (Eq. 1).
    pub packets_in_switch: f64,
    /// Input-buffer occupancy in bytes (𝒬 × packet size).
    pub input_buffer_bytes: f64,
    /// Block latency ℒ (cycles).
    pub latency: f64,
    /// Switch bandwidth (packets/cycle).
    pub bandwidth_pkt_cycle: f64,
}

/// Evaluate the full Section-5 model at one operating point.
pub fn evaluate(params: &SwitchParams, s: usize, delta_c: f64, tau: f64) -> OperatingPoint {
    let k = params.cores();
    let p = params.ports;
    let delta = params.line_rate_delta();
    let dk = delta_k(s, delta_c, k, delta);
    let q = queue_len(p, s, dk, tau);
    let packets = max_packets_in_switch(q, k);
    let latency = block_latency(p, delta_c, q, tau);
    OperatingPoint {
        s,
        delta_c,
        tau,
        delta_k: dk,
        q,
        packets_in_switch: packets,
        input_buffer_bytes: packets * params.packet_bytes as f64,
        latency,
        bandwidth_pkt_cycle: switch_bandwidth(k, tau, delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{KIB, MIB};

    /// The illustrative switch of Figure 5: K=4 cores, τ=4, δ=1, P=4.
    fn fig5_params() -> SwitchParams {
        SwitchParams::figure5()
    }

    #[test]
    fn figure5_scenario_a_no_queueing() {
        // Scenario A: global FCFS, S=K=4, δc=δ=1 ⇒ δk = min(4·1, 4·1) = 4 = τ
        // ⇒ packets are never enqueued (Q = 0).
        let p = fig5_params();
        assert_eq!(p.line_rate_delta(), 1.0);
        let op = evaluate(&p, 4, 1.0, 4.0);
        assert_eq!(op.delta_k, 4.0);
        assert_eq!(op.q, 0.0);
        assert_eq!(op.packets_in_switch, 4.0);
    }

    #[test]
    fn figure5_scenario_b_bursts_build_q3() {
        // Scenario B: S=1, δc=1 ⇒ δk=1; Q = 4/1·(1 − 1/4) = 3, exactly the
        // queue of three packets shown in the Figure 5 detail of Core 0.
        let p = fig5_params();
        let op = evaluate(&p, 1, 1.0, 4.0);
        assert_eq!(op.delta_k, 1.0);
        assert_eq!(op.q, 3.0);
        assert_eq!(op.packets_in_switch, 16.0);
    }

    #[test]
    fn figure5_scenario_c_staggering_removes_queueing() {
        // Scenario C: S=1 but δc=4 (staggered sending) ⇒ δk=4=τ ⇒ Q=0 with
        // the same block-to-core locality as scenario B.
        let p = fig5_params();
        let op = evaluate(&p, 1, 4.0, 4.0);
        assert_eq!(op.q, 0.0);
        assert_eq!(op.packets_in_switch, 4.0);
    }

    #[test]
    fn paper_switch_s1_small_data_occupies_tens_of_mib() {
        // Full switch, S=1, 8 KiB data (δc = 16): the S=1 input-buffer blow-up
        // the paper calls out in Section 6.1 (Fig. 7 middle, ~30 MiB).
        let p = SwitchParams::paper();
        let dc = p.staggered_delta_c(8 * KIB, p.l_cycles());
        let op = evaluate(&p, 1, dc, p.l_cycles());
        assert!(
            op.input_buffer_bytes > 30.0 * MIB as f64,
            "{}",
            op.input_buffer_bytes
        );
        assert!(op.input_buffer_bytes < 35.0 * MIB as f64);
    }

    #[test]
    fn paper_switch_sc_small_data_is_moderate() {
        // S=C=8 with the same small data: bursts are 8× milder.
        let p = SwitchParams::paper();
        let dc = p.staggered_delta_c(8 * KIB, p.l_cycles());
        let op = evaluate(&p, 8, dc, p.l_cycles());
        assert!(
            op.input_buffer_bytes < 5.0 * MIB as f64,
            "{}",
            op.input_buffer_bytes
        );
    }

    #[test]
    fn staggered_large_data_eliminates_queueing() {
        // 512 KiB: δc reaches L so δk = min(S·1024, 1024) = 1024 = τ ⇒ Q=0.
        let p = SwitchParams::paper();
        let dc = p.staggered_delta_c(512 * KIB, p.l_cycles());
        for s in [1, 2, 4, 8] {
            let op = evaluate(&p, s, dc, p.l_cycles());
            assert_eq!(op.q, 0.0, "S={s}");
        }
    }

    #[test]
    fn queue_monotonically_shrinks_with_s() {
        let p = SwitchParams::paper();
        let dc = p.line_rate_delta();
        let mut prev = f64::INFINITY;
        for s in [1, 2, 4, 8] {
            let op = evaluate(&p, s, dc, p.l_cycles());
            assert!(op.q <= prev, "Q must not grow with S");
            prev = op.q;
        }
    }

    #[test]
    fn bandwidth_is_capped_by_line_rate() {
        let p = SwitchParams::paper();
        // Even with an absurdly fast service time the switch cannot exceed 1/δ.
        let b = switch_bandwidth(p.cores(), 1.0, p.line_rate_delta());
        assert_eq!(b, 1.0 / p.line_rate_delta());
    }

    #[test]
    fn latency_includes_collection_and_service() {
        // P=4, δc=2, Q=1, τ=4: ℒ = 3·2 + 2·4 = 14.
        assert_eq!(block_latency(4, 2.0, 1.0, 4.0), 14.0);
    }

    #[test]
    fn littles_law_working_memory_example() {
        // Section 4.3 sanity: M=1, ℬ=0.5 pkt/cycle, P=64, ℒ=65536 cycles
        // ⇒ ℛ = 512 buffers (×1 KiB = 0.5 MiB, the paper's "around 512 KiB").
        let r = working_buffers(1.0, 0.5, 64, 65_536.0);
        assert_eq!(r, 512.0);
    }
}
