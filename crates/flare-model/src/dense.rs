//! Dense aggregation algorithm models (paper Section 6).
//!
//! Three designs are modeled: single-buffer (6.1), multi-buffer (6.2) and
//! tree aggregation (6.3). For each, the paper derives the core service time
//! `τ` and the buffers-per-block count `M`; everything else (bandwidth,
//! input-buffer occupancy, working memory) follows from the Section-5
//! scheduling model.

use crate::params::SwitchParams;
use crate::scheduling::{self, OperatingPoint};
use crate::units::pkt_per_cycle_to_tbps;

/// Which aggregation algorithm a block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// All packets of a block accumulate into one shared buffer guarded by a
    /// critical section (Section 6.1).
    SingleBuffer,
    /// `B` interchangeable buffers per block; the last handler folds the
    /// partial buffers together (Section 6.2).
    MultiBuffer(usize),
    /// Buffers arranged as a fixed binary tree; merges happen only when both
    /// children are ready, so no handler ever waits on a lock and the
    /// aggregation order is fixed ⇒ reproducible (Section 6.3).
    Tree,
}

impl AggKind {
    /// Short label used in tables and bench output.
    pub fn label(&self) -> String {
        match self {
            AggKind::SingleBuffer => "single".to_string(),
            AggKind::MultiBuffer(b) => format!("multi({b})"),
            AggKind::Tree => "tree".to_string(),
        }
    }

    /// Whether the algorithm guarantees a fixed aggregation order and thus
    /// bitwise reproducibility for non-associative operators (F3).
    pub fn reproducible(&self) -> bool {
        matches!(self, AggKind::Tree)
    }
}

/// Evaluated model for one `(algorithm, S, data size)` configuration.
#[derive(Debug, Clone)]
pub struct DenseModel {
    /// Algorithm being modeled.
    pub kind: AggKind,
    /// The Section-5 operating point (δk, Q, 𝒬, ℒ, ...).
    pub op: OperatingPoint,
    /// Buffers per block `M`.
    pub m: f64,
    /// Switch aggregation bandwidth in Tbps.
    pub bandwidth_tbps: f64,
    /// Input-buffer (L2 packet memory) occupancy in bytes.
    pub input_buffer_bytes: f64,
    /// Working-memory (L1) occupancy in bytes: ℛ buffers × packet size.
    pub working_memory_bytes: f64,
}

/// `τ` for single-buffer aggregation — paper Eq. 2, verbatim:
/// `τ = L` when `S = 1` or `δc ≥ L`, else `τ = L·(C−1)/2`.
///
/// The regime switch is deliberately binary, as in the paper: in the
/// contended regime up to `C` handlers of the same cluster pile up on the
/// critical section, and the paper averages their serialized service times
/// to `L(C−1)/2`. (Summing waits of `0, L, …, (C−1)L` over `C` handlers
/// actually averages to `L(C+1)/2` *including* the aggregation itself; the
/// paper's constant corresponds to averaging the pure waiting chain. We keep
/// the paper's constant so modeled magnitudes match the published figures.)
pub fn tau_single(params: &SwitchParams, s: usize, delta_c: f64) -> f64 {
    let l = params.l_cycles();
    let c = params.cores_per_cluster as f64;
    if s == 1 || delta_c >= l {
        l
    } else {
        (l * (c - 1.0) / 2.0).max(l)
    }
}

/// `τ` for multi-buffer aggregation (Section 6.2): Eq. 2 with `δc → B·δc`
/// ("the probability that two running handlers need to access the same
/// buffer decreases proportionally with B"), plus the `(B−1)·L` final fold
/// amortized over the `P` packets of a block.
pub fn tau_multi(params: &SwitchParams, s: usize, delta_c: f64, buffers: usize) -> f64 {
    let l = params.l_cycles();
    let c = params.cores_per_cluster as f64;
    let base = if s == 1 || delta_c * buffers as f64 >= l {
        l
    } else {
        (l * (c - 1.0) / 2.0).max(l)
    };
    base + (buffers as f64 - 1.0) * l / params.ports as f64
}

/// `τ` for tree aggregation (Section 6.3): `P−1` aggregations shared by `P`
/// packets ⇒ `(P−1)·L/P` cycles per packet, plus the DMA copy of the packet
/// into its leaf buffer (64 cycles; "negligible" in the paper but included
/// so tree stays slightly below contention-free single buffer, as in
/// Figures 10 and 11).
pub fn tau_tree(params: &SwitchParams) -> f64 {
    let l = params.l_cycles();
    let p = params.ports as f64;
    (p - 1.0) * l / p + params.dma_copy_cycles
}

/// Buffers per block `M` (Sections 6.1–6.3): 1, `B`, or `(P−1)/log₂P`.
pub fn buffers_per_block(kind: AggKind, ports: usize) -> f64 {
    match kind {
        AggKind::SingleBuffer => 1.0,
        AggKind::MultiBuffer(b) => b as f64,
        AggKind::Tree => {
            let p = ports as f64;
            (p - 1.0) / p.log2()
        }
    }
}

/// The `δc` a host stack targets for this algorithm: enough staggering to
/// avoid contention (`L` for single, `L/B` for multi-buffer) with 2×
/// headroom against arrival jitter — the simulations use exponentially
/// distributed interarrivals (Section 6.4), so targeting exactly `L`
/// would leave half the blocks contended. Tree needs no spacing for
/// correctness but benefits from the same target for queue suppression.
pub fn target_delta_c(params: &SwitchParams, kind: AggKind) -> f64 {
    let l = params.l_cycles();
    match kind {
        AggKind::SingleBuffer => 2.0 * l,
        AggKind::MultiBuffer(b) => 2.0 * l / b as f64,
        AggKind::Tree => l,
    }
}

/// Evaluate the complete dense model for one algorithm at one data size.
///
/// `s` is the scheduling-subset size (the paper evaluates `S = 1` and
/// `S = C`); `data_bytes` determines how far staggered sending can raise
/// `δc` (Section 5).
pub fn evaluate(params: &SwitchParams, kind: AggKind, s: usize, data_bytes: u64) -> DenseModel {
    let delta_c = params.staggered_delta_c(data_bytes, target_delta_c(params, kind));
    let tau = match kind {
        AggKind::SingleBuffer => tau_single(params, s, delta_c),
        AggKind::MultiBuffer(b) => tau_multi(params, s, delta_c, b),
        AggKind::Tree => tau_tree(params),
    };
    let op = scheduling::evaluate(params, s, delta_c, tau);
    let m = buffers_per_block(kind, params.ports);
    let r_buffers =
        scheduling::working_buffers(m, op.bandwidth_pkt_cycle, params.ports, op.latency);
    DenseModel {
        kind,
        op,
        m,
        bandwidth_tbps: pkt_per_cycle_to_tbps(
            op.bandwidth_pkt_cycle,
            params.packet_bytes,
            params.clock_ghz,
        ),
        input_buffer_bytes: op.input_buffer_bytes,
        working_memory_bytes: r_buffers * params.packet_bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{KIB, MIB};

    fn p() -> SwitchParams {
        SwitchParams::paper()
    }

    #[test]
    fn eq2_full_contention_matches_paper() {
        // Small data, S=C: τ = L(C−1)/2 = 1024·3.5 = 3584.
        let params = p();
        let dc = params.staggered_delta_c(8 * KIB, params.l_cycles());
        assert_eq!(tau_single(&params, 8, dc), 3584.0);
    }

    #[test]
    fn eq2_no_contention_cases() {
        let params = p();
        // S=1 ⇒ τ = L regardless of δc.
        assert_eq!(tau_single(&params, 1, 2.0), 1024.0);
        // δc ≥ L ⇒ τ = L.
        assert_eq!(tau_single(&params, 8, 1024.0), 1024.0);
    }

    #[test]
    fn multi_buffer_relaxes_contention_proportionally() {
        let params = p();
        // 256 KiB ⇒ δc = 512: single buffer still contends, 2 buffers don't.
        let dc = params.staggered_delta_c(256 * KIB, params.l_cycles());
        assert_eq!(dc, 512.0);
        // Single buffer still contends at δc = 512 < L...
        assert_eq!(tau_single(&params, 8, dc), 3584.0);
        // ...but two buffers push the effective spacing to 2·512 ≥ L:
        // contention-free plus the amortized (B−1)L/P fold.
        let t2 = tau_multi(&params, 8, dc, 2);
        assert_eq!(t2, 1024.0 + 1024.0 / 64.0);
    }

    #[test]
    fn tree_tau_is_near_l_and_size_independent() {
        let params = p();
        let t = tau_tree(&params);
        assert!((t - (1008.0 + 64.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn buffers_per_block_matches_section6() {
        assert_eq!(buffers_per_block(AggKind::SingleBuffer, 64), 1.0);
        assert_eq!(buffers_per_block(AggKind::MultiBuffer(4), 64), 4.0);
        assert!((buffers_per_block(AggKind::Tree, 64) - 63.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn fig10_ordering_small_data_tree_wins() {
        // 64 KiB, S=C: tree must be the only algorithm near peak bandwidth.
        let params = p();
        let tree = evaluate(&params, AggKind::Tree, 8, 64 * KIB);
        let single = evaluate(&params, AggKind::SingleBuffer, 8, 64 * KIB);
        let multi4 = evaluate(&params, AggKind::MultiBuffer(4), 8, 64 * KIB);
        assert!(tree.bandwidth_tbps > 3.5, "{}", tree.bandwidth_tbps);
        assert!(single.bandwidth_tbps < 1.5);
        assert!(tree.bandwidth_tbps > multi4.bandwidth_tbps);
    }

    #[test]
    fn fig10_ordering_large_data_single_wins() {
        // 512 KiB, S=C: single buffer catches up and edges out tree/multi
        // (no per-buffer management overhead).
        let params = p();
        let tree = evaluate(&params, AggKind::Tree, 8, 512 * KIB);
        let single = evaluate(&params, AggKind::SingleBuffer, 8, 512 * KIB);
        let multi2 = evaluate(&params, AggKind::MultiBuffer(2), 8, 512 * KIB);
        assert!(single.bandwidth_tbps >= tree.bandwidth_tbps);
        assert!(single.bandwidth_tbps >= multi2.bandwidth_tbps);
        assert!(single.bandwidth_tbps > 4.0);
    }

    #[test]
    fn fig10_more_buffers_help_smaller_sizes() {
        // At 128 KiB multi(4) is contention-free while multi(2) is not.
        let params = p();
        let m2 = evaluate(&params, AggKind::MultiBuffer(2), 8, 128 * KIB);
        let m4 = evaluate(&params, AggKind::MultiBuffer(4), 8, 128 * KIB);
        assert!(m4.bandwidth_tbps > m2.bandwidth_tbps);
    }

    #[test]
    fn fig7_single_buffer_memory_tradeoff() {
        // Fig. 7: S=1 keeps bandwidth high for small data but inflates the
        // input buffers to tens of MiB; S=C caps them at a few MiB.
        let params = p();
        let s1 = evaluate(&params, AggKind::SingleBuffer, 1, 8 * KIB);
        let sc = evaluate(&params, AggKind::SingleBuffer, 8, 8 * KIB);
        assert!(s1.bandwidth_tbps > sc.bandwidth_tbps);
        assert!(s1.input_buffer_bytes > 6.0 * sc.input_buffer_bytes);
    }

    #[test]
    fn fig7_working_memory_is_about_half_mib_at_512kib() {
        // Section 6.1: "The occupancy of the working memory is negligible
        // and around 512KiB" for large data.
        let params = p();
        let m = evaluate(&params, AggKind::SingleBuffer, 8, 512 * KIB);
        assert!(m.working_memory_bytes > 0.3 * MIB as f64);
        assert!(
            m.working_memory_bytes < 0.8 * MIB as f64,
            "{}",
            m.working_memory_bytes
        );
    }

    #[test]
    fn tree_is_reproducible_and_others_are_not() {
        assert!(AggKind::Tree.reproducible());
        assert!(!AggKind::SingleBuffer.reproducible());
        assert!(!AggKind::MultiBuffer(2).reproducible());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AggKind::SingleBuffer.label(), "single");
        assert_eq!(AggKind::MultiBuffer(4).label(), "multi(4)");
        assert_eq!(AggKind::Tree.label(), "tree");
    }
}
