//! Unit conversions shared by models, simulators and the bench harness.

/// Bytes in one KiB.
pub const KIB: u64 = 1024;
/// Bytes in one MiB.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in one GiB.
pub const GIB: u64 = 1024 * MIB;

/// Convert a packets-per-cycle rate into Tbps, given the packet payload in
/// bytes and the core clock in GHz (paper: 1 GHz, 1 KiB payloads).
pub fn pkt_per_cycle_to_tbps(rate: f64, packet_bytes: usize, clock_ghz: f64) -> f64 {
    // rate [pkt/cycle] * bytes/pkt * 8 bit/byte * clock [cycle/ns] * 1e9 ns/s / 1e12
    rate * packet_bytes as f64 * 8.0 * clock_ghz * 1e9 / 1e12
}

/// Convert bytes/second into Tbps.
pub fn bytes_per_sec_to_tbps(rate: f64) -> f64 {
    rate * 8.0 / 1e12
}

/// Convert Gbps into bytes per nanosecond (used by link models).
pub fn gbps_to_bytes_per_ns(gbps: f64) -> f64 {
    gbps / 8.0
}

/// Pretty-print a byte count with binary units (for table output).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_switch_rate_matches_paper_headline() {
        // K=512 cores, τ=1024 cycles ⇒ 0.5 pkt/cycle of 1 KiB at 1 GHz
        // ⇒ 4.096 Tbps, the paper's ~4 Tbps dense peak (Fig. 10/11).
        let tbps = pkt_per_cycle_to_tbps(0.5, 1024, 1.0);
        assert!((tbps - 4.096).abs() < 1e-9, "{tbps}");
    }

    #[test]
    fn gbps_conversion_roundtrips() {
        let bpns = gbps_to_bytes_per_ns(100.0);
        assert!((bpns - 12.5).abs() < 1e-12);
        assert!((bytes_per_sec_to_tbps(bpns * 1e9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fmt_bytes_picks_the_right_unit() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KIB), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * MIB), "3.00 MiB");
        assert_eq!(fmt_bytes(5 * GIB), "5.00 GiB");
    }
}
